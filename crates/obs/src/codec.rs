//! JSON codec for observability streams.
//!
//! [`ObsStream`]s ride inside cached `JobResult`s, so they need a
//! canonical, lossless round-trip through `dta-json`. Records encode as
//! compact tagged arrays (`[cycle, unit, seq, [event-tag, ...]]`) rather
//! than keyed objects: a stream can hold hundreds of thousands of
//! records and the array form keeps canonical payloads small while
//! staying diffable.
//!
//! `u64` payloads that can carry high tag bits (sequence stamps,
//! instance tokens) go through [`dta_json::u64_json`] so the full 64-bit
//! range survives the `f64` number representation.

use crate::{GaugeKind, Histogram, ObsEvent, ObsRecord, ObsStream, ThreadEvent};
use dta_json::{u64_from_json, u64_json, Json};

/// Encodes a [`Histogram`] sparsely as
/// `{"buckets": [[bit_len, count], ...], "total": n, "sum": n, "max": n}`
/// (most of the 65 bit-length buckets are empty).
pub fn histogram_to_json(h: &Histogram) -> Json {
    let buckets: Vec<Json> = h
        .counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| Json::Arr(vec![Json::Num(i as f64), u64_json(c)]))
        .collect();
    Json::obj([
        ("buckets", Json::Arr(buckets)),
        ("total", u64_json(h.total)),
        ("sum", u64_json(h.sum)),
        ("max", u64_json(h.max)),
    ])
}

/// Decodes a histogram written by [`histogram_to_json`].
pub fn histogram_from_json(v: &Json) -> Option<Histogram> {
    let mut h = Histogram {
        total: u64_from_json(v.get("total")?)?,
        sum: u64_from_json(v.get("sum")?)?,
        max: u64_from_json(v.get("max")?)?,
        ..Histogram::default()
    };
    for b in v.get("buckets")?.as_arr()? {
        let pair = b.as_arr()?;
        if pair.len() != 2 {
            return None;
        }
        let i = pair[0].as_u64()? as usize;
        if i >= h.counts.len() {
            return None;
        }
        h.counts[i] = u64_from_json(&pair[1])?;
    }
    Some(h)
}

/// Encodes a stream as `{"records": [...], "dropped": n}`.
pub fn stream_to_json(s: &ObsStream) -> Json {
    Json::obj([
        (
            "records",
            Json::Arr(s.records.iter().map(record_to_json).collect()),
        ),
        ("dropped", u64_json(s.dropped)),
    ])
}

/// Decodes a stream written by [`stream_to_json`].
///
/// Records are re-sorted by their deterministic key on the way in, so a
/// decoded stream is canonical even if the document was edited.
pub fn stream_from_json(v: &Json) -> Option<ObsStream> {
    let records = v
        .get("records")?
        .as_arr()?
        .iter()
        .map(record_from_json)
        .collect::<Option<Vec<_>>>()?;
    let dropped = u64_from_json(v.get("dropped")?)?;
    Some(ObsStream::from_records(records, dropped))
}

/// Encodes one record as `[cycle, unit, seq, event]`.
pub fn record_to_json(r: &ObsRecord) -> Json {
    Json::Arr(vec![
        u64_json(r.cycle),
        Json::Num(r.unit as f64),
        u64_json(r.seq),
        event_to_json(&r.ev),
    ])
}

/// Decodes one record written by [`record_to_json`].
pub fn record_from_json(v: &Json) -> Option<ObsRecord> {
    let a = v.as_arr()?;
    if a.len() != 4 {
        return None;
    }
    Some(ObsRecord {
        cycle: u64_from_json(&a[0])?,
        unit: a[1].as_u64()? as u32,
        seq: u64_from_json(&a[2])?,
        ev: event_from_json(&a[3])?,
    })
}

fn thread_event_parts(what: &ThreadEvent) -> (u64, Json, Json) {
    let n = |v: u64| Json::Num(v as f64);
    match *what {
        ThreadEvent::FrameGranted { frame } => (0, u64_json(frame), n(0)),
        ThreadEvent::StoreApplied { slot, became_ready } => {
            (1, n(slot as u64), n(became_ready as u64))
        }
        ThreadEvent::Dispatched => (2, n(0), n(0)),
        ThreadEvent::PfOffloaded => (3, n(0), n(0)),
        ThreadEvent::DmaIssued { tag } => (4, n(tag as u64), n(0)),
        ThreadEvent::DmaCompleted { tag } => (5, n(tag as u64), n(0)),
        ThreadEvent::WaitDma => (6, n(0), n(0)),
        ThreadEvent::ParkedWaitFalloc => (7, n(0), n(0)),
        ThreadEvent::Stopped => (8, n(0), n(0)),
        ThreadEvent::FrameFreed => (9, n(0), n(0)),
        ThreadEvent::ReadBlocked => (10, n(0), n(0)),
    }
}

fn thread_event_from(tag: u64, a: &Json, b: &Json) -> Option<ThreadEvent> {
    Some(match tag {
        0 => ThreadEvent::FrameGranted {
            frame: u64_from_json(a)?,
        },
        1 => ThreadEvent::StoreApplied {
            slot: a.as_u64()? as u16,
            became_ready: b.as_u64()? != 0,
        },
        2 => ThreadEvent::Dispatched,
        3 => ThreadEvent::PfOffloaded,
        4 => ThreadEvent::DmaIssued {
            tag: a.as_u64()? as u8,
        },
        5 => ThreadEvent::DmaCompleted {
            tag: a.as_u64()? as u8,
        },
        6 => ThreadEvent::WaitDma,
        7 => ThreadEvent::ParkedWaitFalloc,
        8 => ThreadEvent::Stopped,
        9 => ThreadEvent::FrameFreed,
        10 => ThreadEvent::ReadBlocked,
        _ => return None,
    })
}

fn gauge_kind_from(slot: u64) -> Option<GaugeKind> {
    Some(match slot {
        0 => GaugeKind::ReadyQueue,
        1 => GaugeKind::FramesInUse,
        2 => GaugeKind::DmaInFlight,
        3 => GaugeKind::PipeState,
        _ => return None,
    })
}

/// Encodes an event as a tagged array.
pub fn event_to_json(ev: &ObsEvent) -> Json {
    let n = |v: u64| Json::Num(v as f64);
    let arr = |items: Vec<Json>| Json::Arr(items);
    match *ev {
        ObsEvent::Thread {
            pe,
            instance,
            thread,
            what,
        } => {
            let (wt, wa, wb) = thread_event_parts(&what);
            arr(vec![
                n(0),
                n(pe as u64),
                u64_json(instance),
                n(thread as u64),
                n(wt),
                wa,
                wb,
            ])
        }
        ObsEvent::DmaRetry { pe, retries } => arr(vec![n(1), n(pe as u64), n(retries as u64)]),
        ObsEvent::DmaExhausted { pe } => arr(vec![n(2), n(pe as u64)]),
        ObsEvent::PeDegraded { pe } => arr(vec![n(3), n(pe as u64)]),
        ObsEvent::WatchdogPark { pe, instance } => {
            arr(vec![n(4), n(pe as u64), u64_json(instance)])
        }
        ObsEvent::FallbackSubstituted { pe, thread } => {
            arr(vec![n(5), n(pe as u64), n(thread as u64)])
        }
        ObsEvent::MsgDropped { src, resend_at } => {
            arr(vec![n(6), n(src as u64), u64_json(resend_at)])
        }
        ObsEvent::MsgDuplicated { src } => arr(vec![n(7), n(src as u64)]),
        ObsEvent::MsgDelayed { src } => arr(vec![n(8), n(src as u64)]),
        ObsEvent::FallocDenied { node, requester } => {
            arr(vec![n(9), n(node as u64), n(requester as u64)])
        }
        ObsEvent::FallocRearb { node, grants } => {
            arr(vec![n(10), n(node as u64), n(grants as u64)])
        }
        ObsEvent::DseCrash { node } => arr(vec![n(11), n(node as u64)]),
        ObsEvent::DseFailover { node, successor } => {
            arr(vec![n(12), n(node as u64), n(successor as u64)])
        }
        ObsEvent::DseRehomed { node, count } => arr(vec![n(13), n(node as u64), u64_json(count)]),
        ObsEvent::DseRestart { node } => arr(vec![n(14), n(node as u64)]),
        ObsEvent::DseResync { node, pe, free } => {
            arr(vec![n(15), n(node as u64), n(pe as u64), n(free as u64)])
        }
        ObsEvent::Gauge { pe, kind, value } => {
            arr(vec![n(16), n(pe as u64), n(kind.slot()), u64_json(value)])
        }
        ObsEvent::Epoch { start, end } => arr(vec![n(17), u64_json(start), u64_json(end)]),
        ObsEvent::LseCrash { pe } => arr(vec![n(18), n(pe as u64)]),
        ObsEvent::LseRestart { pe } => arr(vec![n(19), n(pe as u64)]),
        ObsEvent::LseEvacuated { pe, count } => arr(vec![n(20), n(pe as u64), u64_json(count)]),
        ObsEvent::LseReadmitted { pe, home } => arr(vec![n(21), n(pe as u64), n(home as u64)]),
        ObsEvent::LseKilled { pe, count } => arr(vec![n(22), n(pe as u64), u64_json(count)]),
    }
}

/// Decodes an event written by [`event_to_json`].
pub fn event_from_json(v: &Json) -> Option<ObsEvent> {
    let a = v.as_arr()?;
    let tag = a.first()?.as_u64()?;
    let u16_at = |i: usize| a.get(i).and_then(Json::as_u64).map(|v| v as u16);
    let u32_at = |i: usize| a.get(i).and_then(Json::as_u64).map(|v| v as u32);
    let u64_at = |i: usize| a.get(i).and_then(u64_from_json);
    Some(match tag {
        0 => ObsEvent::Thread {
            pe: u16_at(1)?,
            instance: u64_at(2)?,
            thread: u32_at(3)?,
            what: thread_event_from(a.get(4)?.as_u64()?, a.get(5)?, a.get(6)?)?,
        },
        1 => ObsEvent::DmaRetry {
            pe: u16_at(1)?,
            retries: u32_at(2)?,
        },
        2 => ObsEvent::DmaExhausted { pe: u16_at(1)? },
        3 => ObsEvent::PeDegraded { pe: u16_at(1)? },
        4 => ObsEvent::WatchdogPark {
            pe: u16_at(1)?,
            instance: u64_at(2)?,
        },
        5 => ObsEvent::FallbackSubstituted {
            pe: u16_at(1)?,
            thread: u32_at(2)?,
        },
        6 => ObsEvent::MsgDropped {
            src: u32_at(1)?,
            resend_at: u64_at(2)?,
        },
        7 => ObsEvent::MsgDuplicated { src: u32_at(1)? },
        8 => ObsEvent::MsgDelayed { src: u32_at(1)? },
        9 => ObsEvent::FallocDenied {
            node: u16_at(1)?,
            requester: u16_at(2)?,
        },
        10 => ObsEvent::FallocRearb {
            node: u16_at(1)?,
            grants: u32_at(2)?,
        },
        11 => ObsEvent::DseCrash { node: u16_at(1)? },
        12 => ObsEvent::DseFailover {
            node: u16_at(1)?,
            successor: u16_at(2)?,
        },
        13 => ObsEvent::DseRehomed {
            node: u16_at(1)?,
            count: u64_at(2)?,
        },
        14 => ObsEvent::DseRestart { node: u16_at(1)? },
        15 => ObsEvent::DseResync {
            node: u16_at(1)?,
            pe: u16_at(2)?,
            free: u32_at(3)?,
        },
        16 => ObsEvent::Gauge {
            pe: u16_at(1)?,
            kind: gauge_kind_from(a.get(2)?.as_u64()?)?,
            value: u64_at(3)?,
        },
        17 => ObsEvent::Epoch {
            start: u64_at(1)?,
            end: u64_at(2)?,
        },
        18 => ObsEvent::LseCrash { pe: u16_at(1)? },
        19 => ObsEvent::LseRestart { pe: u16_at(1)? },
        20 => ObsEvent::LseEvacuated {
            pe: u16_at(1)?,
            count: u64_at(2)?,
        },
        21 => ObsEvent::LseReadmitted {
            pe: u16_at(1)?,
            home: u16_at(2)?,
        },
        22 => ObsEvent::LseKilled {
            pe: u16_at(1)?,
            count: u64_at(2)?,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GAUGE_SEQ_BIT, MSG_SEQ_BIT};

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::Thread {
                pe: 3,
                instance: (7 << 48) | 42,
                thread: 2,
                what: ThreadEvent::FrameGranted { frame: 1 << 60 },
            },
            ObsEvent::Thread {
                pe: 0,
                instance: 1,
                thread: 0,
                what: ThreadEvent::StoreApplied {
                    slot: 5,
                    became_ready: true,
                },
            },
            ObsEvent::Thread {
                pe: 1,
                instance: 2,
                thread: 1,
                what: ThreadEvent::DmaIssued { tag: 9 },
            },
            ObsEvent::Thread {
                pe: 1,
                instance: 2,
                thread: 1,
                what: ThreadEvent::Stopped,
            },
            ObsEvent::Thread {
                pe: 2,
                instance: 3,
                thread: 1,
                what: ThreadEvent::ReadBlocked,
            },
            ObsEvent::DmaRetry { pe: 4, retries: 3 },
            ObsEvent::DmaExhausted { pe: 4 },
            ObsEvent::PeDegraded { pe: 4 },
            ObsEvent::WatchdogPark {
                pe: 2,
                instance: u64::MAX,
            },
            ObsEvent::FallbackSubstituted { pe: 2, thread: 7 },
            ObsEvent::MsgDropped {
                src: 11,
                resend_at: 999,
            },
            ObsEvent::MsgDuplicated { src: 12 },
            ObsEvent::MsgDelayed { src: 13 },
            ObsEvent::FallocDenied {
                node: 1,
                requester: 6,
            },
            ObsEvent::FallocRearb { node: 1, grants: 2 },
            ObsEvent::DseCrash { node: 0 },
            ObsEvent::DseFailover {
                node: 0,
                successor: 1,
            },
            ObsEvent::DseRehomed { node: 0, count: 17 },
            ObsEvent::DseRestart { node: 0 },
            ObsEvent::DseResync {
                node: 0,
                pe: 3,
                free: 60,
            },
            ObsEvent::Gauge {
                pe: 5,
                kind: GaugeKind::DmaInFlight,
                value: 4,
            },
            ObsEvent::Epoch {
                start: 100,
                end: 200,
            },
            ObsEvent::LseCrash { pe: 6 },
            ObsEvent::LseRestart { pe: 6 },
            ObsEvent::LseEvacuated { pe: 6, count: 3 },
            ObsEvent::LseReadmitted { pe: 7, home: 6 },
            ObsEvent::LseKilled { pe: 6, count: 2 },
        ]
    }

    #[test]
    fn every_event_variant_roundtrips() {
        for (i, ev) in sample_events().into_iter().enumerate() {
            let j = event_to_json(&ev);
            assert_eq!(event_from_json(&j), Some(ev), "variant {i}");
        }
    }

    #[test]
    fn records_roundtrip_through_text_with_high_seq_bits() {
        let recs = vec![
            ObsRecord {
                cycle: 5,
                unit: 0,
                seq: GAUGE_SEQ_BIT | 3,
                ev: ObsEvent::Gauge {
                    pe: 0,
                    kind: GaugeKind::PipeState,
                    value: 2,
                },
            },
            ObsRecord {
                cycle: 9,
                unit: 8,
                seq: MSG_SEQ_BIT | 1,
                ev: ObsEvent::MsgDropped {
                    src: 0,
                    resend_at: 209,
                },
            },
        ];
        let stream = ObsStream::from_records(recs, 3);
        let text = stream_to_json(&stream).to_string_compact();
        let back = stream_from_json(&dta_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(stream_from_json(&Json::Null).is_none());
        assert!(event_from_json(&Json::Arr(vec![Json::Num(99.0)])).is_none());
        assert!(record_from_json(&Json::Arr(vec![Json::Num(1.0)])).is_none());
    }
}
