//! Streaming Perfetto/Chrome `trace.json` export.
//!
//! Track layout (one Chrome "process" per node, one "thread" per
//! hardware unit):
//!
//! * `pid = node + 1`, process name `node N`;
//! * PE execution track: `tid = pe + 1` — EX slices (`ph:"X"`), one per
//!   dispatch→block span, named after the static thread;
//! * MFC track: `tid = 200000 + pe` — DMA-in-flight async spans
//!   (`ph:"b"/"e"`, id `pe.tag`); their overlap with EX slices on the
//!   same PE *is* the paper's Fig. 4 non-blocking claim;
//! * DSE track: `tid = 100000 + node` — crash/failover/restart/resync
//!   and FALLOC arbitration instants (`ph:"i"`);
//! * gauges render as counter tracks (`ph:"C"`).
//!
//! Timestamps are simulated cycles (shown as µs — Perfetto has no
//! cycle unit). The file loads in <https://ui.perfetto.dev> as-is.

use crate::{GaugeKind, ObsEvent, ObsRecord, ObsSink, ThreadEvent};
use dta_json::Json;

/// Static machine shape needed to lay out tracks and name slices.
#[derive(Clone, Debug)]
pub struct TrackLayout {
    /// Total PE count.
    pub total_pes: u16,
    /// PEs per node.
    pub pes_per_node: u16,
    /// Node count.
    pub nodes: u16,
    /// Static thread names, indexed by thread id.
    pub thread_names: Vec<String>,
}

impl TrackLayout {
    fn node_of(&self, pe: u16) -> u16 {
        pe / self.pes_per_node.max(1)
    }

    fn thread_name(&self, thread: u32) -> String {
        self.thread_names
            .get(thread as usize)
            .cloned()
            .unwrap_or_else(|| format!("t{thread}"))
    }
}

const DSE_TID_BASE: u64 = 100_000;
const MFC_TID_BASE: u64 = 200_000;

fn event(ph: &str, name: String, ts: u64, pid: u64, tid: u64) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::Str(name)),
        ("ph".to_string(), Json::Str(ph.to_string())),
        ("ts".to_string(), Json::Num(ts as f64)),
        ("pid".to_string(), Json::Num(pid as f64)),
        ("tid".to_string(), Json::Num(tid as f64)),
    ]
}

/// Sink that renders the stream as a Chrome/Perfetto trace.
#[derive(Debug)]
pub struct PerfettoWriter {
    layout: TrackLayout,
    events: Vec<Json>,
    /// Per-PE open EX slice: (start cycle, instance, thread).
    open: Vec<Option<(u64, u64, u32)>>,
    last_ts: u64,
    dropped: u64,
}

impl PerfettoWriter {
    /// Creates a writer, emitting the track-naming metadata up front.
    pub fn new(layout: TrackLayout) -> Self {
        let mut events = Vec::new();
        for node in 0..layout.nodes {
            let pid = node as u64 + 1;
            let mut m = event("M", "process_name".to_string(), 0, pid, 0);
            m.push((
                "args".to_string(),
                Json::obj([("name", Json::Str(format!("node {node}")))]),
            ));
            events.push(Json::Obj(m));
        }
        for pe in 0..layout.total_pes {
            let pid = layout.node_of(pe) as u64 + 1;
            for (tid, label) in [
                (pe as u64 + 1, format!("pe {pe}")),
                (MFC_TID_BASE + pe as u64, format!("mfc {pe}")),
            ] {
                let mut m = event("M", "thread_name".to_string(), 0, pid, tid);
                m.push(("args".to_string(), Json::obj([("name", Json::Str(label))])));
                events.push(Json::Obj(m));
            }
        }
        for node in 0..layout.nodes {
            let pid = node as u64 + 1;
            let mut m = event(
                "M",
                "thread_name".to_string(),
                0,
                pid,
                DSE_TID_BASE + node as u64,
            );
            m.push((
                "args".to_string(),
                Json::obj([("name", Json::Str(format!("dse {node}")))]),
            ));
            events.push(Json::Obj(m));
        }
        let n = layout.total_pes as usize;
        PerfettoWriter {
            layout,
            events,
            open: vec![None; n],
            last_ts: 0,
            dropped: 0,
        }
    }

    fn pe_pid(&self, pe: u16) -> u64 {
        self.layout.node_of(pe) as u64 + 1
    }

    fn close_slice(&mut self, pe: u16, end: u64, reason: &str) {
        let Some((start, instance, thread)) =
            self.open.get_mut(pe as usize).and_then(|slot| slot.take())
        else {
            return;
        };
        let mut e = event(
            "X",
            self.layout.thread_name(thread),
            start,
            self.pe_pid(pe),
            pe as u64 + 1,
        );
        e.push((
            "dur".to_string(),
            Json::Num(end.saturating_sub(start) as f64),
        ));
        e.push(("cat".to_string(), Json::Str("ex".to_string())));
        // Chrome trace palette name keyed on why the span ended: slices
        // that end blocked on memory render distinctly from clean stops,
        // making stall structure visible at a glance in the timeline.
        let cname = match reason {
            "wait-dma" => "thread_state_iowait",
            "wait-falloc" => "thread_state_runnable",
            "stop" => "good",
            _ => "thread_state_running",
        };
        e.push(("cname".to_string(), Json::Str(cname.to_string())));
        e.push((
            "args".to_string(),
            Json::obj([
                ("instance", Json::Num((instance & 0xFFFF_FFFF) as f64)),
                ("end", Json::Str(reason.to_string())),
            ]),
        ));
        self.events.push(Json::Obj(e));
    }

    fn instant(&mut self, name: String, ts: u64, pid: u64, tid: u64) {
        let mut e = event("i", name, ts, pid, tid);
        e.push(("s".to_string(), Json::Str("t".to_string())));
        self.events.push(Json::Obj(e));
    }

    fn counter(&mut self, name: String, ts: u64, pid: u64, value: u64) {
        let mut e = event("C", name, ts, pid, 0);
        e.push((
            "args".to_string(),
            Json::obj([("value", Json::Num(value as f64))]),
        ));
        self.events.push(Json::Obj(e));
    }

    /// Maps a message source rank onto a (pid, tid) track.
    fn rank_track(&self, rank: u32) -> Option<(u64, u64)> {
        let total = self.layout.total_pes as u32;
        if rank < total {
            let pe = rank as u16;
            Some((self.pe_pid(pe), pe as u64 + 1))
        } else if rank < total + self.layout.nodes as u32 {
            let node = (rank - total) as u64;
            Some((node + 1, DSE_TID_BASE + node))
        } else {
            None
        }
    }

    fn dse_track(&self, node: u16) -> (u64, u64) {
        (node as u64 + 1, DSE_TID_BASE + node as u64)
    }

    /// Finishes the trace (closing still-open slices) and renders it.
    pub fn finish(mut self) -> String {
        let end = self.last_ts + 1;
        for pe in 0..self.open.len() {
            self.close_slice(pe as u16, end, "run-end");
        }
        let dropped = self.dropped;
        Json::obj([
            ("traceEvents", Json::Arr(self.events)),
            ("displayTimeUnit", Json::Str("ns".to_string())),
            (
                "otherData",
                Json::obj([
                    ("source", Json::Str("dta-obs".to_string())),
                    ("droppedRecords", Json::Num(dropped as f64)),
                ]),
            ),
        ])
        .to_string_compact()
    }
}

impl ObsSink for PerfettoWriter {
    fn record(&mut self, rec: &ObsRecord) {
        self.last_ts = self.last_ts.max(rec.cycle);
        let ts = rec.cycle;
        match rec.ev {
            ObsEvent::Thread {
                pe,
                instance,
                thread,
                what,
            } => {
                let (pid, pe_tid) = (self.pe_pid(pe), pe as u64 + 1);
                match what {
                    ThreadEvent::Dispatched => {
                        self.close_slice(pe, ts, "redispatch");
                        if let Some(slot) = self.open.get_mut(pe as usize) {
                            *slot = Some((ts, instance, thread));
                        }
                    }
                    ThreadEvent::WaitDma => self.close_slice(pe, ts, "wait-dma"),
                    ThreadEvent::ParkedWaitFalloc => self.close_slice(pe, ts, "wait-falloc"),
                    ThreadEvent::Stopped => self.close_slice(pe, ts, "stop"),
                    ThreadEvent::DmaIssued { tag } => {
                        let mut e =
                            event("b", "dma".to_string(), ts, pid, MFC_TID_BASE + pe as u64);
                        e.push(("cat".to_string(), Json::Str("dma".to_string())));
                        e.push(("id".to_string(), Json::Str(format!("{pe}.{tag}"))));
                        self.events.push(Json::Obj(e));
                    }
                    ThreadEvent::DmaCompleted { tag } => {
                        let mut e =
                            event("e", "dma".to_string(), ts, pid, MFC_TID_BASE + pe as u64);
                        e.push(("cat".to_string(), Json::Str("dma".to_string())));
                        e.push(("id".to_string(), Json::Str(format!("{pe}.{tag}"))));
                        self.events.push(Json::Obj(e));
                    }
                    ThreadEvent::PfOffloaded => {
                        self.instant("pf-offload".to_string(), ts, pid, pe_tid);
                    }
                    ThreadEvent::ReadBlocked => {
                        self.instant("read-blocked".to_string(), ts, pid, pe_tid);
                    }
                    ThreadEvent::FrameGranted { .. }
                    | ThreadEvent::StoreApplied { .. }
                    | ThreadEvent::FrameFreed => {}
                }
            }
            ObsEvent::Gauge { pe, kind, value } => {
                let pid = self.pe_pid(pe);
                let name = match kind {
                    GaugeKind::ReadyQueue => format!("pe{pe} ready-queue"),
                    GaugeKind::FramesInUse => format!("pe{pe} frames"),
                    GaugeKind::DmaInFlight => format!("pe{pe} dma-in-flight"),
                    GaugeKind::PipeState => format!("pe{pe} pipe-state"),
                };
                self.counter(name, ts, pid, value);
            }
            ObsEvent::DmaRetry { pe, retries } => {
                let pid = self.pe_pid(pe);
                self.instant(
                    format!("dma-retry x{retries}"),
                    ts,
                    pid,
                    MFC_TID_BASE + pe as u64,
                );
            }
            ObsEvent::DmaExhausted { pe } => {
                let pid = self.pe_pid(pe);
                self.instant(
                    "dma-exhausted".to_string(),
                    ts,
                    pid,
                    MFC_TID_BASE + pe as u64,
                );
            }
            ObsEvent::PeDegraded { pe } => {
                self.instant("degraded".to_string(), ts, self.pe_pid(pe), pe as u64 + 1);
            }
            ObsEvent::WatchdogPark { pe, .. } => {
                self.instant(
                    "watchdog-park".to_string(),
                    ts,
                    self.pe_pid(pe),
                    pe as u64 + 1,
                );
            }
            ObsEvent::FallbackSubstituted { pe, .. } => {
                self.instant("fallback".to_string(), ts, self.pe_pid(pe), pe as u64 + 1);
            }
            ObsEvent::MsgDropped { src, .. } => {
                if let Some((pid, tid)) = self.rank_track(src) {
                    self.instant("msg-dropped".to_string(), ts, pid, tid);
                }
            }
            ObsEvent::MsgDuplicated { src } => {
                if let Some((pid, tid)) = self.rank_track(src) {
                    self.instant("msg-duplicated".to_string(), ts, pid, tid);
                }
            }
            ObsEvent::MsgDelayed { src } => {
                if let Some((pid, tid)) = self.rank_track(src) {
                    self.instant("msg-delayed".to_string(), ts, pid, tid);
                }
            }
            ObsEvent::FallocDenied { node, requester } => {
                let (pid, tid) = self.dse_track(node);
                self.instant(format!("falloc-denied pe{requester}"), ts, pid, tid);
            }
            ObsEvent::FallocRearb { node, grants } => {
                let (pid, tid) = self.dse_track(node);
                self.instant(format!("falloc-rearb x{grants}"), ts, pid, tid);
            }
            ObsEvent::DseCrash { node } => {
                let (pid, tid) = self.dse_track(node);
                self.instant("crash".to_string(), ts, pid, tid);
            }
            ObsEvent::DseFailover { node, successor } => {
                let (pid, tid) = self.dse_track(node);
                self.instant(format!("failover→dse{successor}"), ts, pid, tid);
            }
            ObsEvent::DseRehomed { node, count } => {
                let (pid, tid) = self.dse_track(node);
                self.instant(format!("rehomed x{count}"), ts, pid, tid);
            }
            ObsEvent::DseRestart { node } => {
                let (pid, tid) = self.dse_track(node);
                self.instant("restart".to_string(), ts, pid, tid);
            }
            ObsEvent::DseResync { node, pe, free } => {
                let (pid, tid) = self.dse_track(node);
                self.instant(format!("resync pe{pe} free={free}"), ts, pid, tid);
            }
            ObsEvent::LseCrash { pe } => {
                self.instant("lse-crash".to_string(), ts, self.pe_pid(pe), pe as u64 + 1);
            }
            ObsEvent::LseRestart { pe } => {
                self.instant(
                    "lse-restart".to_string(),
                    ts,
                    self.pe_pid(pe),
                    pe as u64 + 1,
                );
            }
            ObsEvent::LseEvacuated { pe, count } => {
                self.instant(
                    format!("lse-evacuated x{count}"),
                    ts,
                    self.pe_pid(pe),
                    pe as u64 + 1,
                );
            }
            ObsEvent::LseReadmitted { pe, home } => {
                self.instant(
                    format!("lse-readmitted from pe{home}"),
                    ts,
                    self.pe_pid(pe),
                    pe as u64 + 1,
                );
            }
            ObsEvent::LseKilled { pe, count } => {
                self.instant(
                    format!("lse-killed x{count}"),
                    ts,
                    self.pe_pid(pe),
                    pe as u64 + 1,
                );
            }
            ObsEvent::Epoch { .. } => {}
        }
    }

    fn dropped(&mut self, n: u64) {
        self.dropped += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> TrackLayout {
        TrackLayout {
            total_pes: 2,
            pes_per_node: 2,
            nodes: 1,
            thread_names: vec!["main".to_string(), "worker \"pf\"".to_string()],
        }
    }

    fn thread(cycle: u64, seq: u64, pe: u16, what: ThreadEvent) -> ObsRecord {
        ObsRecord {
            cycle,
            unit: pe as u32,
            seq,
            ev: ObsEvent::Thread {
                pe,
                instance: 3,
                thread: 1,
                what,
            },
        }
    }

    #[test]
    fn output_is_valid_json_with_slices_and_spans() {
        let mut w = PerfettoWriter::new(layout());
        w.record(&thread(10, 0, 0, ThreadEvent::DmaIssued { tag: 1 }));
        w.record(&thread(12, 1, 0, ThreadEvent::Dispatched));
        w.record(&thread(18, 2, 0, ThreadEvent::DmaCompleted { tag: 1 }));
        w.record(&thread(20, 3, 0, ThreadEvent::Stopped));
        w.record(&ObsRecord {
            cycle: 16,
            unit: 2,
            seq: 0,
            ev: ObsEvent::DseCrash { node: 0 },
        });
        let text = w.finish();
        let json = dta_json::parse(&text).expect("writer must emit parseable JSON");
        let evs = json.get("traceEvents").and_then(Json::as_arr).unwrap();
        let slice = evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one EX slice");
        assert_eq!(slice.get("ts").and_then(Json::as_u64), Some(12));
        assert_eq!(slice.get("dur").and_then(Json::as_u64), Some(8));
        // Thread name with an embedded quote survives escaping.
        assert_eq!(
            slice.get("name").and_then(Json::as_str),
            Some("worker \"pf\"")
        );
        assert!(evs
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("b")));
        assert!(evs
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("e")));
        assert!(evs
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("crash")));
    }

    #[test]
    fn open_slices_close_at_finish() {
        let mut w = PerfettoWriter::new(layout());
        w.record(&thread(5, 0, 1, ThreadEvent::Dispatched));
        let text = w.finish();
        let json = dta_json::parse(&text).unwrap();
        let evs = json.get("traceEvents").and_then(Json::as_arr).unwrap();
        let slice = evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(slice.get("dur").and_then(Json::as_u64), Some(1));
    }
}
