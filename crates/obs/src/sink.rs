//! Event sinks: consumers of a merged [`ObsStream`](crate::ObsStream).

use crate::{ObsEvent, ObsRecord};
use std::collections::VecDeque;

/// A consumer of observability records. Sinks run *after* the
/// simulation (the engines log into private per-unit rings), so a sink
/// can never perturb simulated time; `NullSink` additionally compiles
/// to nothing so the disabled path costs zero.
pub trait ObsSink {
    /// Consumes one record (records arrive in wall order).
    fn record(&mut self, rec: &ObsRecord);
    /// Reports the number of records lost to ring overflow.
    fn dropped(&mut self, _n: u64) {}
}

/// Discards everything.
#[derive(Default, Debug, Clone, Copy)]
pub struct NullSink;

impl ObsSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _rec: &ObsRecord) {}
}

/// Keeps the newest `cap` records.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<ObsRecord>,
    /// Records dropped by this ring *plus* upstream ring overflow.
    pub dropped: u64,
}

impl RingSink {
    /// Creates a ring keeping the newest `cap` records (min 1).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &ObsRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl ObsSink for RingSink {
    fn record(&mut self, rec: &ObsRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*rec);
    }

    fn dropped(&mut self, n: u64) {
        self.dropped += n;
    }
}

/// Aggregates per-kind counts, shaped to reconcile 1:1 with the
/// simulator's `RunStats` counters (the chaos suite asserts exact
/// equality).
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Lifecycle events (no `RunStats` counterpart).
    pub thread_events: u64,
    /// Summed planned retries — reconciles with `RunStats::dma_retries`.
    pub dma_retries: u64,
    /// Reconciles with `RunStats::dma_exhausted`.
    pub dma_exhausted: u64,
    /// Reconciles with `RunStats::degraded_pes.len()`.
    pub degraded_pes: u64,
    /// Reconciles with `RunStats::watchdog_parks`.
    pub watchdog_parks: u64,
    /// Reconciles with `RunStats::fallback_instances`.
    pub fallback_instances: u64,
    /// Reconciles with `RunStats::msgs_dropped`.
    pub msgs_dropped: u64,
    /// Reconciles with `RunStats::msgs_duplicated`.
    pub msgs_duplicated: u64,
    /// Reconciles with `RunStats::msgs_delayed`.
    pub msgs_delayed: u64,
    /// Reconciles with `RunStats::falloc_denials`.
    pub falloc_denials: u64,
    /// Re-arbitration passes (no `RunStats` counterpart).
    pub falloc_rearbs: u64,
    /// Reconciles with `RunStats::dse_crashes`.
    pub dse_crashes: u64,
    /// Reconciles with `RunStats::failovers`.
    pub failovers: u64,
    /// Summed re-homed counts — reconciles with
    /// `RunStats::rehomed_fallocs`.
    pub rehomed_fallocs: u64,
    /// DSE restarts (no `RunStats` counterpart).
    pub dse_restarts: u64,
    /// Reconciles with `RunStats::resync_msgs`.
    pub resync_msgs: u64,
    /// Reconciles with `RunStats::lse_crashes`.
    pub lse_crashes: u64,
    /// LSE restarts (no `RunStats` counterpart).
    pub lse_restarts: u64,
    /// Summed evacuation counts — reconciles with
    /// `RunStats::evacuated_frames`.
    pub evacuated_frames: u64,
    /// Reconciles with `RunStats::readmitted_instances`.
    pub readmitted_instances: u64,
    /// Summed kill counts — reconciles with
    /// `RunStats::killed_instances`.
    pub killed_instances: u64,
    /// Gauge samples seen.
    pub gauges: u64,
    /// Engine epochs seen.
    pub epochs: u64,
    /// Upstream ring-overflow drops.
    pub dropped: u64,
}

impl ObsSink for CountingSink {
    fn record(&mut self, rec: &ObsRecord) {
        match rec.ev {
            ObsEvent::Thread { .. } => self.thread_events += 1,
            ObsEvent::DmaRetry { retries, .. } => self.dma_retries += retries as u64,
            ObsEvent::DmaExhausted { .. } => self.dma_exhausted += 1,
            ObsEvent::PeDegraded { .. } => self.degraded_pes += 1,
            ObsEvent::WatchdogPark { .. } => self.watchdog_parks += 1,
            ObsEvent::FallbackSubstituted { .. } => self.fallback_instances += 1,
            ObsEvent::MsgDropped { .. } => self.msgs_dropped += 1,
            ObsEvent::MsgDuplicated { .. } => self.msgs_duplicated += 1,
            ObsEvent::MsgDelayed { .. } => self.msgs_delayed += 1,
            ObsEvent::FallocDenied { .. } => self.falloc_denials += 1,
            ObsEvent::FallocRearb { .. } => self.falloc_rearbs += 1,
            ObsEvent::DseCrash { .. } => self.dse_crashes += 1,
            ObsEvent::DseFailover { .. } => self.failovers += 1,
            ObsEvent::DseRehomed { count, .. } => self.rehomed_fallocs += count,
            ObsEvent::DseRestart { .. } => self.dse_restarts += 1,
            ObsEvent::DseResync { .. } => self.resync_msgs += 1,
            ObsEvent::LseCrash { .. } => self.lse_crashes += 1,
            ObsEvent::LseRestart { .. } => self.lse_restarts += 1,
            ObsEvent::LseEvacuated { count, .. } => self.evacuated_frames += count,
            ObsEvent::LseReadmitted { .. } => self.readmitted_instances += 1,
            ObsEvent::LseKilled { count, .. } => self.killed_instances += count,
            ObsEvent::Gauge { .. } => self.gauges += 1,
            ObsEvent::Epoch { .. } => self.epochs += 1,
        }
    }

    fn dropped(&mut self, n: u64) {
        self.dropped += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadEvent;

    fn rec(cycle: u64, ev: ObsEvent) -> ObsRecord {
        ObsRecord {
            cycle,
            unit: 0,
            seq: cycle,
            ev,
        }
    }

    #[test]
    fn ring_sink_keeps_newest() {
        let mut s = RingSink::new(2);
        for c in 0..4 {
            s.record(&rec(c, ObsEvent::DseCrash { node: 0 }));
        }
        s.dropped(5);
        assert_eq!(s.dropped, 2 + 5);
        let kept: Vec<u64> = s.records().map(|r| r.cycle).collect();
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn counting_sink_sums_fields() {
        let mut s = CountingSink::default();
        s.record(&rec(0, ObsEvent::DmaRetry { pe: 1, retries: 3 }));
        s.record(&rec(1, ObsEvent::DmaRetry { pe: 1, retries: 2 }));
        s.record(&rec(2, ObsEvent::DseRehomed { node: 0, count: 4 }));
        s.record(&rec(
            3,
            ObsEvent::Thread {
                pe: 0,
                instance: 0,
                thread: 0,
                what: ThreadEvent::Stopped,
            },
        ));
        assert_eq!(s.dma_retries, 5);
        assert_eq!(s.rehomed_fallocs, 4);
        assert_eq!(s.thread_events, 1);
    }
}
