//! Deterministic observability for the DTA simulator.
//!
//! This crate defines the structured event bus that replaces the ad-hoc
//! `Trace` of early revisions: every unit of the simulated machine (PE,
//! DSE, the engine itself) appends [`ObsRecord`]s to a private
//! [`ObsLog`]; after the run the logs are merged and sorted by the
//! simulator's deterministic wall order `(cycle, unit, seq)` into an
//! [`ObsStream`], which can then be fed to any [`ObsSink`]
//! (counting, ring-buffering, metrics aggregation, Perfetto export).
//!
//! # Determinism rules
//!
//! The merged stream is required to be **bit-identical across engine
//! modes** (`Parallelism::Off` and `Threads(n)` for any `n`). The
//! simulator guarantees this by construction:
//!
//! * every record is stamped with the cycle at which the underlying
//!   state change happens, never with the host-visit time;
//! * plain events take their `seq` from a per-unit counter that advances
//!   in per-unit emission order, which both engines replay identically
//!   (deliver-then-tick at every visited cycle);
//! * cycle-sampled gauges live in a *separate* sequence space
//!   ([`GAUGE_SEQ_BIT`]` | sample_index * 4 + slot`) derived purely from
//!   the sampling grid, so the host time at which a lazy flush runs is
//!   irrelevant;
//! * message-fault events reuse the faulted message's own stamp
//!   (`src_rank`, `seq` + marker bits), which is engine-invariant;
//! * events and gauges ring-buffer *independently* per unit, so overflow
//!   drops are a pure function of the per-unit emission order.
//!
//! The only exception is the engine's own unit ([`ENGINE_UNIT`]): epoch
//! boundary records depend on the shard layout and are excluded from
//! [`ObsStream::deterministic`].

pub mod analyze;
pub mod codec;
mod metrics;
mod perfetto;
mod sink;

pub use analyze::{analyze, Analysis, CriticalPath, EdgeKind, PeAttribution, ThreadBreakdown};
pub use metrics::{Histogram, MetricsReport, MetricsSink};
pub use perfetto::{PerfettoWriter, TrackLayout};
pub use sink::{CountingSink, NullSink, ObsSink, RingSink};

use std::collections::VecDeque;

/// Unit id of the engine itself (epoch-boundary records). Not part of
/// the deterministic stream: epoch layout depends on the shard count.
pub const ENGINE_UNIT: u32 = u32::MAX;

/// Marker bit distinguishing gauge-sample sequence numbers from the
/// per-unit event counter.
pub const GAUGE_SEQ_BIT: u64 = 1 << 62;

/// Marker bit distinguishing message-fault records (their `seq` is the
/// faulted message's own stamp sequence).
pub const MSG_SEQ_BIT: u64 = 1 << 63;
/// Added to [`MSG_SEQ_BIT`] for delay records (a drop and a delay of the
/// same message are mutually exclusive, but delay+duplicate are not).
pub const MSG_DELAY_SEQ_BIT: u64 = 1 << 60;
/// Added to [`MSG_SEQ_BIT`] for duplicate records.
pub const MSG_DUP_SEQ_BIT: u64 = 1 << 59;

/// Exclusive fine-grained cycle-attribution categories.
///
/// Every simulated PE-cycle is charged to exactly one of these, at the
/// same charge sites that feed the coarse Fig.-5 buckets, so per-PE
/// category sums equal the total attributed cycles *by construction*
/// (the conservation invariant) and — because each charge is a pure
/// function of simulated state — the tables are bit-identical across
/// `{dense, fast-forward} × {Off, Threads(n)}` engines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum FineCat {
    /// Issue, dispatch and branch cycles of a healthy pipeline.
    Compute = 0,
    /// Any cycle spent inside a PF code block (issue, operand stalls,
    /// MFC-queue retries, DMAWAIT spins): prefetch-programming overhead.
    PfGated = 1,
    /// Blocking main-memory READ spans, and operand stalls fed by a
    /// blocking READ's destination register.
    ReadStall = 2,
    /// Cycles retrying a full MFC queue on a PUT outside PF: the write
    /// path back to main memory is saturated.
    WriteStall = 3,
    /// Operand stalls fed by local-store load latency or port pressure.
    LsStall = 4,
    /// FALLOC round-trip waits (request until grant/defer response).
    FallocWait = 5,
    /// DMAWAIT spins and GET-side MFC-queue retries outside PF.
    DmaWait = 6,
    /// Idle spans entered through a watchdog park (the instance left the
    /// pipeline involuntarily and nothing else was ready).
    Parked = 7,
    /// Compute cycles on a degraded PE (DMA retry budget exhausted; the
    /// PE runs PF-skipping fallback bodies).
    Degraded = 8,
    /// No ready thread and no parked-instance hint.
    Idle = 9,
}

/// Number of [`FineCat`] categories.
pub const NUM_FINE: usize = 10;

impl FineCat {
    /// All categories, in display order.
    pub const ALL: [FineCat; NUM_FINE] = [
        FineCat::Compute,
        FineCat::PfGated,
        FineCat::ReadStall,
        FineCat::WriteStall,
        FineCat::LsStall,
        FineCat::FallocWait,
        FineCat::DmaWait,
        FineCat::Parked,
        FineCat::Degraded,
        FineCat::Idle,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FineCat::Compute => "Compute",
            FineCat::PfGated => "PfGated",
            FineCat::ReadStall => "ReadStall",
            FineCat::WriteStall => "WriteStall",
            FineCat::LsStall => "LsStall",
            FineCat::FallocWait => "FallocWait",
            FineCat::DmaWait => "DmaWait",
            FineCat::Parked => "Parked",
            FineCat::Degraded => "Degraded",
            FineCat::Idle => "Idle",
        }
    }
}

/// Per-thread-instance lifecycle events (the Fig. 4 states of the
/// paper, as recorded by the legacy `Trace`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadEvent {
    /// A frame was granted (encoded `FramePtr`).
    FrameGranted { frame: u64 },
    /// A producer STORE landed in the frame.
    StoreApplied { slot: u16, became_ready: bool },
    /// The instance left the ready queue and entered the pipeline.
    Dispatched,
    /// The PF phase was offloaded to the SP pipeline.
    PfOffloaded,
    /// A DMA command was issued on behalf of the instance.
    DmaIssued { tag: u8 },
    /// A DMA command completed.
    DmaCompleted { tag: u8 },
    /// The instance blocked waiting for outstanding DMA.
    WaitDma,
    /// The allocation was parked waiting for a prefetch buffer.
    ParkedWaitFalloc,
    /// The instance executed STOP.
    Stopped,
    /// The instance's frame was released.
    FrameFreed,
    /// A blocking scalar main-memory READ issued on the EX pipeline
    /// (outside any PF block) — the stall the prefetch mechanism exists
    /// to remove. PF coverage = decoupled GETs vs these.
    ReadBlocked,
}

/// What a cycle-sampled gauge measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GaugeKind {
    /// LSE ready-queue depth.
    ReadyQueue,
    /// Frames in use on the PE.
    FramesInUse,
    /// DMA commands in flight on the PE's MFC.
    DmaInFlight,
    /// Pipeline state: 2 = busy, 1 = wait-DMA, 0 = idle.
    PipeState,
}

impl GaugeKind {
    /// Stable slot index inside one sample boundary (< [`GAUGE_SLOTS`]).
    #[inline]
    pub fn slot(self) -> u64 {
        match self {
            GaugeKind::ReadyQueue => 0,
            GaugeKind::FramesInUse => 1,
            GaugeKind::DmaInFlight => 2,
            GaugeKind::PipeState => 3,
        }
    }
}

/// Number of gauge slots per sample boundary.
pub const GAUGE_SLOTS: u64 = 4;

/// One structured observability event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObsEvent {
    /// Per-instance lifecycle event on a PE.
    Thread {
        /// Global PE index.
        pe: u16,
        /// Raw `InstanceId` bits.
        instance: u64,
        /// Static thread index.
        thread: u32,
        /// What happened.
        what: ThreadEvent,
    },
    /// A DMA command was admitted with `retries` planned retries.
    DmaRetry { pe: u16, retries: u32 },
    /// A DMA command exhausted its retry budget.
    DmaExhausted { pe: u16 },
    /// The PE entered degraded (PF-skip fallback) mode.
    PeDegraded { pe: u16 },
    /// The watchdog parked a spinning instance.
    WatchdogPark { pe: u16, instance: u64 },
    /// An `AllocFrame` was substituted with the thread's fallback twin.
    FallbackSubstituted { pe: u16, thread: u32 },
    /// A message from `src` was dropped (resend scheduled).
    MsgDropped { src: u32, resend_at: u64 },
    /// A message from `src` was duplicated in flight.
    MsgDuplicated { src: u32 },
    /// A message from `src` was delayed by fault-injected jitter.
    MsgDelayed { src: u32 },
    /// A DSE denied a FALLOC (fault-injected arbitration denial).
    FallocDenied { node: u16, requester: u16 },
    /// A DSE re-arbitrated its deferred-FALLOC queue.
    FallocRearb { node: u16, grants: u32 },
    /// A DSE crashed.
    DseCrash { node: u16 },
    /// Arbitration for `node` failed over to `successor`.
    DseFailover { node: u16, successor: u16 },
    /// `count` FALLOCs were re-homed away from a dead DSE.
    DseRehomed { node: u16, count: u64 },
    /// A crashed DSE restarted.
    DseRestart { node: u16 },
    /// An LSE re-registered its free-frame count after crash/restart.
    DseResync { node: u16, pe: u16, free: u32 },
    /// An LSE crashed, destroying its frame table.
    LseCrash { pe: u16 },
    /// A crashed LSE restarted with an empty frame table.
    LseRestart { pe: u16 },
    /// `count` pre-start frames were evacuated off a crashed LSE.
    LseEvacuated { pe: u16, count: u64 },
    /// An evacuated instance from `home` was re-admitted on `pe`.
    LseReadmitted { pe: u16, home: u16 },
    /// `count` started instances were killed by an LSE crash.
    LseKilled { pe: u16, count: u64 },
    /// A cycle-sampled gauge value.
    Gauge {
        pe: u16,
        kind: GaugeKind,
        value: u64,
    },
    /// An engine epoch ran (non-deterministic unit; excluded from the
    /// invariance guarantee).
    Epoch { start: u64, end: u64 },
}

/// One timestamped record in a unit's log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ObsRecord {
    /// Cycle at which the recorded state change happens.
    pub cycle: u64,
    /// Emitting unit (PE rank, DSE rank, or [`ENGINE_UNIT`]).
    pub unit: u32,
    /// Per-unit sequence number (see the crate docs for the spaces).
    pub seq: u64,
    /// The event.
    pub ev: ObsEvent,
}

impl ObsRecord {
    /// Deterministic wall-order sort key.
    #[inline]
    pub fn key(&self) -> (u64, u32, u64) {
        (self.cycle, self.unit, self.seq)
    }
}

fn push_ring(buf: &mut VecDeque<ObsRecord>, cap: usize, dropped: &mut u64, rec: ObsRecord) {
    if buf.len() == cap {
        buf.pop_front();
        *dropped += 1;
    }
    buf.push_back(rec);
}

/// A unit's private event log: a keep-newest ring for plain events plus
/// an independent keep-newest ring for gauge samples, and the lazy
/// sampling cursor.
#[derive(Debug)]
pub struct ObsLog {
    unit: u32,
    events_on: bool,
    interval: u64,
    next_sample: u64,
    cap: usize,
    events: VecDeque<ObsRecord>,
    seq: u64,
    samples: VecDeque<ObsRecord>,
    dropped: u64,
    dropped_samples: u64,
}

impl ObsLog {
    /// Creates a log for `unit`. `cap` bounds each ring (min 1);
    /// `events_on` enables plain events; `interval > 0` enables gauge
    /// sampling on that cycle stride.
    pub fn new(unit: u32, cap: usize, events_on: bool, interval: u64) -> Self {
        ObsLog {
            unit,
            events_on,
            interval,
            next_sample: interval,
            cap: cap.max(1),
            events: VecDeque::new(),
            seq: 0,
            samples: VecDeque::new(),
            dropped: 0,
            dropped_samples: 0,
        }
    }

    /// A disabled log (records nothing).
    pub fn off(unit: u32) -> Self {
        Self::new(unit, 1, false, 0)
    }

    /// Whether plain events are recorded.
    #[inline]
    pub fn events_on(&self) -> bool {
        self.events_on
    }

    /// Whether gauge sampling is active.
    #[inline]
    pub fn metrics_on(&self) -> bool {
        self.interval > 0
    }

    /// The emitting unit id.
    #[inline]
    pub fn unit(&self) -> u32 {
        self.unit
    }

    /// Records `ev` at `cycle` (no-op unless events are on).
    #[inline]
    pub fn emit(&mut self, cycle: u64, ev: ObsEvent) {
        if !self.events_on {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        push_ring(
            &mut self.events,
            self.cap,
            &mut self.dropped,
            ObsRecord {
                cycle,
                unit: self.unit,
                seq,
                ev,
            },
        );
    }

    /// Next pending sample boundary strictly before `t`, advancing the
    /// cursor. Call in a loop to flush lazily: boundaries stay pending
    /// until the unit is next visited, and record values reflect the
    /// unit's state *at the boundary* (no mutation can have happened in
    /// between, since mutations are visits).
    #[inline]
    pub fn next_boundary_before(&mut self, t: u64) -> Option<u64> {
        if self.interval == 0 || self.next_sample >= t {
            return None;
        }
        let b = self.next_sample;
        self.next_sample += self.interval;
        Some(b)
    }

    /// Like [`Self::next_boundary_before`] but inclusive of `t`; used
    /// for the final flush at the end of the run.
    pub fn next_boundary_through(&mut self, t: u64) -> Option<u64> {
        if self.interval == 0 || self.next_sample > t {
            return None;
        }
        let b = self.next_sample;
        self.next_sample += self.interval;
        Some(b)
    }

    /// Records a gauge sample for `boundary`. The sequence number is
    /// derived from the sampling grid, not the event counter, so flush
    /// timing cannot perturb the merged order.
    pub fn emit_sample(&mut self, boundary: u64, kind: GaugeKind, pe: u16, value: u64) {
        debug_assert!(self.interval > 0 && boundary.is_multiple_of(self.interval));
        let seq = GAUGE_SEQ_BIT | ((boundary / self.interval) * GAUGE_SLOTS + kind.slot());
        push_ring(
            &mut self.samples,
            self.cap,
            &mut self.dropped_samples,
            ObsRecord {
                cycle: boundary,
                unit: self.unit,
                seq,
                ev: ObsEvent::Gauge { pe, kind, value },
            },
        );
    }

    /// Moves every record into `out`; returns the drop count.
    pub fn drain_into(&mut self, out: &mut Vec<ObsRecord>) -> u64 {
        out.extend(self.events.drain(..));
        out.extend(self.samples.drain(..));
        self.dropped + self.dropped_samples
    }

    /// Moves every record stamped `cycle <= horizon` into `out`, leaving
    /// the rest (and the drop counters) in place. Both rings hold records
    /// in nondecreasing cycle order — events are emitted at unit-visit
    /// time and gauge samples in sampling-grid order — so a front drain
    /// is exact. This is the incremental-streaming primitive: the engine
    /// calls it at safe horizons (cycles whose activity is fully
    /// simulated), relieving ring pressure long before the post-run
    /// merge.
    pub fn drain_through(&mut self, horizon: u64, out: &mut Vec<ObsRecord>) {
        while self.events.front().is_some_and(|r| r.cycle <= horizon) {
            out.push(self.events.pop_front().expect("peeked"));
        }
        while self.samples.front().is_some_and(|r| r.cycle <= horizon) {
            out.push(self.samples.pop_front().expect("peeked"));
        }
    }

    /// Records currently held (events + samples).
    pub fn len(&self) -> usize {
        self.events.len() + self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The merged, wall-order-sorted event stream of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsStream {
    /// All records, sorted by [`ObsRecord::key`].
    pub records: Vec<ObsRecord>,
    /// Records lost to per-unit ring overflow (engine unit excluded).
    pub dropped: u64,
}

impl ObsStream {
    /// Builds a stream from unsorted records.
    pub fn from_records(mut records: Vec<ObsRecord>, dropped: u64) -> Self {
        records.sort_unstable_by_key(ObsRecord::key);
        ObsStream { records, dropped }
    }

    /// Replays the stream into a sink.
    pub fn feed<S: ObsSink + ?Sized>(&self, sink: &mut S) {
        for r in &self.records {
            sink.record(r);
        }
        sink.dropped(self.dropped);
    }

    /// The engine-invariant portion of the stream: everything except
    /// the engine unit's epoch records.
    pub fn deterministic(&self) -> Vec<ObsRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| r.unit != ENGINE_UNIT)
            .collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pe: u16) -> ObsEvent {
        ObsEvent::Thread {
            pe,
            instance: 7,
            thread: 0,
            what: ThreadEvent::Dispatched,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut log = ObsLog::new(3, 2, true, 0);
        for c in 0..5u64 {
            log.emit(c, ev(3));
        }
        let mut out = Vec::new();
        let dropped = log.drain_into(&mut out);
        assert_eq!(dropped, 3);
        let cycles: Vec<u64> = out.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![3, 4]); // newest survive
        assert_eq!(out[0].seq, 3); // seq keeps counting across drops
    }

    #[test]
    fn drain_through_is_a_prefix_and_preserves_drops() {
        let mut log = ObsLog::new(3, 2, true, 0);
        for c in 0..5u64 {
            log.emit(c, ev(3)); // drops cycles 0..=2, keeps 3 and 4
        }
        let mut early = Vec::new();
        log.drain_through(3, &mut early);
        assert_eq!(early.iter().map(|r| r.cycle).collect::<Vec<_>>(), [3]);
        // The remainder (and the cumulative drop count) survive for the
        // final merge.
        let mut rest = Vec::new();
        let dropped = log.drain_into(&mut rest);
        assert_eq!(rest.iter().map(|r| r.cycle).collect::<Vec<_>>(), [4]);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = ObsLog::off(0);
        log.emit(1, ev(0));
        assert!(log.is_empty());
        assert!(!log.events_on() && !log.metrics_on());
    }

    #[test]
    fn sample_boundaries_are_lazy_and_exhaustive() {
        let mut log = ObsLog::new(0, 16, false, 10);
        assert_eq!(log.next_boundary_before(5), None);
        assert_eq!(log.next_boundary_before(25), Some(10));
        assert_eq!(log.next_boundary_before(25), Some(20));
        assert_eq!(log.next_boundary_before(25), None);
        // Final flush is inclusive.
        assert_eq!(log.next_boundary_through(30), Some(30));
        assert_eq!(log.next_boundary_through(30), None);
    }

    #[test]
    fn gauge_seq_is_grid_derived() {
        let mut log = ObsLog::new(0, 16, false, 10);
        log.emit_sample(20, GaugeKind::DmaInFlight, 0, 1);
        let mut out = Vec::new();
        log.drain_into(&mut out);
        assert_eq!(
            out[0].seq,
            GAUGE_SEQ_BIT | (2 * GAUGE_SLOTS + GaugeKind::DmaInFlight.slot())
        );
    }

    #[test]
    fn stream_sorts_by_wall_order_and_filters_engine_unit() {
        let recs = vec![
            ObsRecord {
                cycle: 5,
                unit: ENGINE_UNIT,
                seq: 0,
                ev: ObsEvent::Epoch { start: 0, end: 8 },
            },
            ObsRecord {
                cycle: 5,
                unit: 1,
                seq: 1,
                ev: ev(1),
            },
            ObsRecord {
                cycle: 2,
                unit: 2,
                seq: 0,
                ev: ev(2),
            },
        ];
        let s = ObsStream::from_records(recs, 0);
        assert_eq!(s.records[0].cycle, 2);
        assert_eq!(s.deterministic().len(), 2);
    }
}
