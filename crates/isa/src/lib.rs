//! # dta-isa — instruction set for the DTA simulator
//!
//! This crate defines the software-visible architecture of the Decoupled
//! Threaded Architecture (DTA) machine reproduced from Giorgi, Popovic &
//! Puzovic, *"Exploiting DMA to enable non-blocking execution in Decoupled
//! Threaded Architecture"* (IPDPS'09):
//!
//! * a RISC-like register ISA ([`Instr`], [`Reg`], [`Src`]) with the DTA
//!   thread-management instructions of the paper's Table 1 (`FALLOC`,
//!   `FFREE`, `STOP`, frame `LOAD`/`STORE`), the main-memory `READ`/`WRITE`
//!   accesses the prefetching mechanism targets, local-store accesses, and
//!   the DMA programming instructions of Table 3;
//! * the thread model: every thread's code is partitioned into the
//!   **PF / PL / EX / PS** code blocks ([`CodeBlock`], [`BlockMap`]);
//! * whole programs ([`Program`]) — a set of thread codes plus a global
//!   data segment laid out in main memory;
//! * an ergonomic [`builder`] DSL used to hand-code benchmarks (as the
//!   paper's authors did), a text [`asm`] assembler / disassembler, and a
//!   structural [`validate`] pass.
//!
//! The ISA is deliberately scalar (the SPU's SIMD width is orthogonal to
//! the decoupling mechanism under study) but keeps the SPU properties that
//! matter: in-order dual issue (one *compute*-class and one *memory*-class
//! instruction per cycle — see [`Instr::class`]), no caches, and explicit
//! software-managed local store.
//!
//! ## Register conventions
//!
//! | register | role |
//! |----------|------|
//! | `r0`     | hard-wired zero (writes are ignored) |
//! | `r1`     | self frame pointer (set by hardware at thread start) |
//! | `r2`     | prefetch-buffer base address in the local store (set by hardware) |
//! | `r3..`   | general purpose |

pub mod asm;
pub mod builder;
pub mod encode;
pub mod frame;
pub mod instr;
pub mod program;
pub mod reg;
pub mod validate;

pub use builder::{ProgramBuilder, ThreadBuilder};
pub use encode::{decode_program, encode_program, DecodeError};
pub use frame::FramePtr;
pub use instr::{AluOp, BrCond, IClass, Instr, Src};
pub use program::{BlockMap, CodeBlock, GlobalDef, Program, ThreadCode, ThreadId};
pub use reg::{Reg, FRAME_PTR_REG, NUM_REGS, PREFETCH_BASE_REG, ZERO_REG};
pub use validate::{validate_program, validate_thread, FallbackProblem, ValidationError};
