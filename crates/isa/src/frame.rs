//! Frame pointers.
//!
//! A DTA *frame* is the per-thread-instance input area managed by the
//! distributed scheduler and held in a processing element's local store
//! ("the frame memory is a local memory associated with each processing
//! element", paper §2). A frame pointer identifies both the owning PE and
//! the frame slot within that PE's frame region, so that `STORE`
//! instructions executed anywhere in the machine can be routed to the right
//! place.
//!
//! Frame pointers travel through ordinary 64-bit registers (a thread
//! receives the frame pointers of its consumers through its own frame), so
//! they have a canonical [`u64` encoding](FramePtr::encode).

use std::fmt;

/// A global frame identifier: owning PE + frame index within that PE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FramePtr {
    /// Global index of the owning processing element.
    pub pe: u16,
    /// Frame slot index within the owning PE's frame region.
    pub index: u32,
}

/// Tag placed in the upper bits of an encoded frame pointer so that stray
/// integers are unlikely to decode as valid frames.
const TAG: u64 = 0xD7A0_0000_0000_0000;
const TAG_MASK: u64 = 0xFFFF_0000_0000_0000;

impl FramePtr {
    /// Creates a frame pointer.
    #[inline]
    pub const fn new(pe: u16, index: u32) -> Self {
        FramePtr { pe, index }
    }

    /// Encodes into the 64-bit register representation.
    #[inline]
    pub const fn encode(self) -> u64 {
        TAG | ((self.pe as u64) << 32) | self.index as u64
    }

    /// Decodes a register value, returning `None` if the tag does not
    /// match (i.e. the value is not a frame pointer).
    #[inline]
    pub const fn decode(raw: u64) -> Option<Self> {
        if raw & TAG_MASK != TAG {
            return None;
        }
        Some(FramePtr {
            pe: ((raw >> 32) & 0xFFFF) as u16,
            index: raw as u32,
        })
    }

    /// Decodes, panicking with a diagnostic on malformed values. Used by
    /// the simulator where a malformed frame pointer is a program bug.
    #[inline]
    #[track_caller]
    pub fn decode_expect(raw: u64) -> Self {
        match Self::decode(raw) {
            Some(fp) => fp,
            None => panic!("value {raw:#x} is not an encoded frame pointer"),
        }
    }
}

impl fmt::Display for FramePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame(pe={}, idx={})", self.pe, self.index)
    }
}

impl fmt::Debug for FramePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for pe in [0u16, 1, 7, 255, u16::MAX] {
            for index in [0u32, 1, 1000, u32::MAX] {
                let fp = FramePtr::new(pe, index);
                assert_eq!(FramePtr::decode(fp.encode()), Some(fp));
            }
        }
    }

    #[test]
    fn reject_untagged_values() {
        assert_eq!(FramePtr::decode(0), None);
        assert_eq!(FramePtr::decode(42), None);
        assert_eq!(FramePtr::decode(u64::MAX), None);
    }

    #[test]
    fn encoded_values_differ_per_pe() {
        let a = FramePtr::new(0, 5).encode();
        let b = FramePtr::new(1, 5).encode();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "not an encoded frame pointer")]
    fn decode_expect_panics_on_garbage() {
        FramePtr::decode_expect(123);
    }

    #[test]
    fn display() {
        assert_eq!(FramePtr::new(3, 9).to_string(), "frame(pe=3, idx=9)");
    }
}
