//! Binary instruction encoding.
//!
//! DTA thread code lives in each PE's local store (the paper: "in order
//! to store the code of DTA threads that execute on the SPU ... we use
//! the Local Store"), so programs need a machine-code image format. The
//! encoding is byte-oriented and self-describing: one opcode byte
//! followed by fixed-width little-endian operands per instruction, plus a
//! small thread/program container with a magic and version. Every value
//! round-trips exactly (see the property tests).
//!
//! The encoding also gives an honest *code size* figure per thread —
//! relevant because code competes with frames and prefetch buffers for
//! the 156 kB local store.

use crate::instr::{AluOp, BrCond, Instr, Src};
use crate::program::{BlockMap, Program, ThreadCode, ThreadId};
use crate::reg::Reg;
use std::fmt;

/// Image format magic (`DTA1`).
pub const MAGIC: [u8; 4] = *b"DTA1";

/// Decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended mid-value.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Register index out of range.
    BadRegister(u8),
    /// Bad container magic/version.
    BadMagic,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction stream"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
            DecodeError::BadMagic => write!(f, "bad image magic or version"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcodes. Src-carrying instructions use op and op|SRC_IMM_BIT.
const SRC_IMM_BIT: u8 = 0x80;
const OP_ALU: u8 = 0x01;
const OP_LI: u8 = 0x02;
const OP_MOV: u8 = 0x03;
const OP_NOP: u8 = 0x04;
const OP_BR: u8 = 0x05;
const OP_JMP: u8 = 0x06;
const OP_LOAD: u8 = 0x07;
const OP_STORE: u8 = 0x08;
const OP_FALLOC: u8 = 0x09;
const OP_FFREE: u8 = 0x0A;
const OP_STOP: u8 = 0x0B;
const OP_READ: u8 = 0x0C;
const OP_WRITE: u8 = 0x0D;
const OP_LSLOAD: u8 = 0x0E;
const OP_LSSTORE: u8 = 0x0F;
const OP_DMAGET: u8 = 0x10;
const OP_DMAGETS: u8 = 0x11;
const OP_DMAPUT: u8 = 0x12;
const OP_DMAYIELD: u8 = 0x13;
const OP_DMAWAIT: u8 = 0x14;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        Reg::try_new(b).ok_or(DecodeError::BadRegister(b))
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn alu_code(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|o| *o == op).unwrap() as u8
}
fn br_code(c: BrCond) -> u8 {
    BrCond::ALL.iter().position(|o| *o == c).unwrap() as u8
}

fn src_payload(out: &mut Vec<u8>, s: Src) -> u8 {
    match s {
        Src::Reg(r) => {
            out.push(r.index() as u8);
            out.extend_from_slice(&[0, 0, 0]); // keep width fixed
            0
        }
        Src::Imm(i) => {
            put_i32(out, i);
            SRC_IMM_BIT
        }
    }
}

fn read_src(c: &mut Cursor, imm: bool) -> Result<Src, DecodeError> {
    if imm {
        Ok(Src::Imm(c.i32()?))
    } else {
        let r = c.reg()?;
        c.take(3)?;
        Ok(Src::Reg(r))
    }
}

/// Appends one instruction's encoding.
pub fn encode_instr(i: &Instr, out: &mut Vec<u8>) {
    match *i {
        Instr::Alu { op, rd, ra, rb } => {
            let at = out.len();
            out.push(OP_ALU);
            out.push(alu_code(op));
            out.push(rd.index() as u8);
            out.push(ra.index() as u8);
            let bit = src_payload(out, rb);
            out[at] |= bit;
        }
        Instr::Li { rd, imm } => {
            out.push(OP_LI);
            out.push(rd.index() as u8);
            put_i64(out, imm);
        }
        Instr::Mov { rd, ra } => {
            out.push(OP_MOV);
            out.push(rd.index() as u8);
            out.push(ra.index() as u8);
        }
        Instr::Nop => out.push(OP_NOP),
        Instr::Br {
            cond,
            ra,
            rb,
            target,
        } => {
            let at = out.len();
            out.push(OP_BR);
            out.push(br_code(cond));
            out.push(ra.index() as u8);
            put_u32(out, target);
            let bit = src_payload(out, rb);
            out[at] |= bit;
        }
        Instr::Jmp { target } => {
            out.push(OP_JMP);
            put_u32(out, target);
        }
        Instr::Load { rd, slot } => {
            out.push(OP_LOAD);
            out.push(rd.index() as u8);
            put_u16(out, slot);
        }
        Instr::Store { rs, rframe, slot } => {
            out.push(OP_STORE);
            out.push(rs.index() as u8);
            out.push(rframe.index() as u8);
            put_u16(out, slot);
        }
        Instr::Falloc { rd, thread, sc } => {
            out.push(OP_FALLOC);
            out.push(rd.index() as u8);
            put_u32(out, thread.0);
            put_u16(out, sc);
        }
        Instr::Ffree { rframe } => {
            out.push(OP_FFREE);
            out.push(rframe.index() as u8);
        }
        Instr::Stop => out.push(OP_STOP),
        Instr::Read { rd, ra, off } => {
            out.push(OP_READ);
            out.push(rd.index() as u8);
            out.push(ra.index() as u8);
            put_i32(out, off);
        }
        Instr::Write { rs, ra, off } => {
            out.push(OP_WRITE);
            out.push(rs.index() as u8);
            out.push(ra.index() as u8);
            put_i32(out, off);
        }
        Instr::LsLoad { rd, ra, off } => {
            out.push(OP_LSLOAD);
            out.push(rd.index() as u8);
            out.push(ra.index() as u8);
            put_i32(out, off);
        }
        Instr::LsStore { rs, ra, off } => {
            out.push(OP_LSSTORE);
            out.push(rs.index() as u8);
            out.push(ra.index() as u8);
            put_i32(out, off);
        }
        Instr::DmaGet {
            rls,
            ls_off,
            rmem,
            mem_off,
            bytes,
            tag,
        } => {
            let at = out.len();
            out.push(OP_DMAGET);
            out.push(rls.index() as u8);
            put_i32(out, ls_off);
            out.push(rmem.index() as u8);
            put_i32(out, mem_off);
            out.push(tag);
            let bit = src_payload(out, bytes);
            out[at] |= bit;
        }
        Instr::DmaGetStrided {
            rls,
            ls_off,
            rmem,
            mem_off,
            elem_bytes,
            count,
            stride,
            tag,
        } => {
            // Two Src operands: encode their tags in one flags byte.
            out.push(OP_DMAGETS);
            let mut flags = 0u8;
            if matches!(count, Src::Imm(_)) {
                flags |= 1;
            }
            if matches!(stride, Src::Imm(_)) {
                flags |= 2;
            }
            out.push(flags);
            out.push(rls.index() as u8);
            put_i32(out, ls_off);
            out.push(rmem.index() as u8);
            put_i32(out, mem_off);
            put_u16(out, elem_bytes);
            src_payload(out, count);
            src_payload(out, stride);
            out.push(tag);
        }
        Instr::DmaPut {
            rls,
            ls_off,
            rmem,
            mem_off,
            bytes,
            tag,
        } => {
            let at = out.len();
            out.push(OP_DMAPUT);
            out.push(rls.index() as u8);
            put_i32(out, ls_off);
            out.push(rmem.index() as u8);
            put_i32(out, mem_off);
            out.push(tag);
            let bit = src_payload(out, bytes);
            out[at] |= bit;
        }
        Instr::DmaYield => out.push(OP_DMAYIELD),
        Instr::DmaWait { tag } => {
            out.push(OP_DMAWAIT);
            out.push(tag);
        }
    }
}

fn decode_one(c: &mut Cursor) -> Result<Instr, DecodeError> {
    let op = c.u8()?;
    let imm = op & SRC_IMM_BIT != 0;
    Ok(match op & !SRC_IMM_BIT {
        OP_ALU => {
            let code = c.u8()? as usize;
            let alu = *AluOp::ALL.get(code).ok_or(DecodeError::BadOpcode(op))?;
            let rd = c.reg()?;
            let ra = c.reg()?;
            let rb = read_src(c, imm)?;
            Instr::Alu {
                op: alu,
                rd,
                ra,
                rb,
            }
        }
        OP_LI => Instr::Li {
            rd: c.reg()?,
            imm: c.i64()?,
        },
        OP_MOV => Instr::Mov {
            rd: c.reg()?,
            ra: c.reg()?,
        },
        OP_NOP => Instr::Nop,
        OP_BR => {
            let code = c.u8()? as usize;
            let cond = *BrCond::ALL.get(code).ok_or(DecodeError::BadOpcode(op))?;
            let ra = c.reg()?;
            let target = c.u32()?;
            let rb = read_src(c, imm)?;
            Instr::Br {
                cond,
                ra,
                rb,
                target,
            }
        }
        OP_JMP => Instr::Jmp { target: c.u32()? },
        OP_LOAD => Instr::Load {
            rd: c.reg()?,
            slot: c.u16()?,
        },
        OP_STORE => Instr::Store {
            rs: c.reg()?,
            rframe: c.reg()?,
            slot: c.u16()?,
        },
        OP_FALLOC => Instr::Falloc {
            rd: c.reg()?,
            thread: ThreadId(c.u32()?),
            sc: c.u16()?,
        },
        OP_FFREE => Instr::Ffree { rframe: c.reg()? },
        OP_STOP => Instr::Stop,
        OP_READ => Instr::Read {
            rd: c.reg()?,
            ra: c.reg()?,
            off: c.i32()?,
        },
        OP_WRITE => Instr::Write {
            rs: c.reg()?,
            ra: c.reg()?,
            off: c.i32()?,
        },
        OP_LSLOAD => Instr::LsLoad {
            rd: c.reg()?,
            ra: c.reg()?,
            off: c.i32()?,
        },
        OP_LSSTORE => Instr::LsStore {
            rs: c.reg()?,
            ra: c.reg()?,
            off: c.i32()?,
        },
        OP_DMAGET => {
            let rls = c.reg()?;
            let ls_off = c.i32()?;
            let rmem = c.reg()?;
            let mem_off = c.i32()?;
            let tag = c.u8()?;
            let bytes = read_src(c, imm)?;
            Instr::DmaGet {
                rls,
                ls_off,
                rmem,
                mem_off,
                bytes,
                tag,
            }
        }
        OP_DMAGETS => {
            let flags = c.u8()?;
            let rls = c.reg()?;
            let ls_off = c.i32()?;
            let rmem = c.reg()?;
            let mem_off = c.i32()?;
            let elem_bytes = c.u16()?;
            let count = read_src(c, flags & 1 != 0)?;
            let stride = read_src(c, flags & 2 != 0)?;
            let tag = c.u8()?;
            Instr::DmaGetStrided {
                rls,
                ls_off,
                rmem,
                mem_off,
                elem_bytes,
                count,
                stride,
                tag,
            }
        }
        OP_DMAPUT => {
            let rls = c.reg()?;
            let ls_off = c.i32()?;
            let rmem = c.reg()?;
            let mem_off = c.i32()?;
            let tag = c.u8()?;
            let bytes = read_src(c, imm)?;
            Instr::DmaPut {
                rls,
                ls_off,
                rmem,
                mem_off,
                bytes,
                tag,
            }
        }
        OP_DMAYIELD => Instr::DmaYield,
        OP_DMAWAIT => Instr::DmaWait { tag: c.u8()? },
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

/// Encodes a thread (header + code stream).
pub fn encode_thread(t: &ThreadCode, out: &mut Vec<u8>) {
    let name = t.name.as_bytes();
    put_u16(out, name.len() as u16);
    out.extend_from_slice(name);
    put_u32(out, t.code.len() as u32);
    put_u32(out, t.blocks.pf_end);
    put_u32(out, t.blocks.pl_end);
    put_u32(out, t.blocks.ex_end);
    put_u16(out, t.frame_slots);
    put_u32(out, t.prefetch_bytes);
    for i in &t.code {
        encode_instr(i, out);
    }
}

fn decode_thread(c: &mut Cursor) -> Result<ThreadCode, DecodeError> {
    let name_len = c.u16()? as usize;
    let name = String::from_utf8(c.take(name_len)?.to_vec()).map_err(|_| DecodeError::BadMagic)?;
    let n = c.u32()? as usize;
    let blocks = BlockMap {
        pf_end: c.u32()?,
        pl_end: c.u32()?,
        ex_end: c.u32()?,
    };
    let frame_slots = c.u16()?;
    let prefetch_bytes = c.u32()?;
    let mut code = Vec::with_capacity(n);
    for _ in 0..n {
        code.push(decode_one(c)?);
    }
    Ok(ThreadCode {
        name,
        code,
        blocks,
        frame_slots,
        prefetch_bytes,
        fallback: None,
    })
}

/// Encodes a whole program image (threads + globals + entry).
pub fn encode_program(p: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, p.threads.len() as u32);
    put_u32(&mut out, p.entry.0);
    put_u16(&mut out, p.entry_args);
    for t in &p.threads {
        encode_thread(t, &mut out);
    }
    put_u32(&mut out, p.globals.len() as u32);
    for g in &p.globals {
        let name = g.name.as_bytes();
        put_u16(&mut out, name.len() as u16);
        out.extend_from_slice(name);
        put_i64(&mut out, g.addr as i64);
        put_u32(&mut out, g.data.len() as u32);
        out.extend_from_slice(&g.data);
    }
    out
}

/// Decodes a program image.
pub fn decode_program(buf: &[u8]) -> Result<Program, DecodeError> {
    let mut c = Cursor { buf, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let nthreads = c.u32()? as usize;
    let entry = ThreadId(c.u32()?);
    let entry_args = c.u16()?;
    let mut threads = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        threads.push(decode_thread(&mut c)?);
    }
    let nglobals = c.u32()? as usize;
    let mut globals = Vec::with_capacity(nglobals);
    for _ in 0..nglobals {
        let name_len = c.u16()? as usize;
        let name =
            String::from_utf8(c.take(name_len)?.to_vec()).map_err(|_| DecodeError::BadMagic)?;
        let addr = c.i64()? as u64;
        let len = c.u32()? as usize;
        let data = c.take(len)?.to_vec();
        globals.push(crate::program::GlobalDef { name, addr, data });
    }
    Ok(Program {
        threads,
        entry,
        entry_args,
        globals,
    })
}

/// Encoded code size of one thread, in bytes (header excluded) — how much
/// local store the thread's code occupies.
pub fn code_size(t: &ThreadCode) -> usize {
    let mut buf = Vec::new();
    for i in &t.code {
        encode_instr(i, &mut buf);
    }
    buf.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Alu {
                op: AluOp::Add,
                rd: r(3),
                ra: r(4),
                rb: Src::Imm(-9),
            },
            Instr::Alu {
                op: AluOp::Sltu,
                rd: r(3),
                ra: r(4),
                rb: Src::Reg(r(5)),
            },
            Instr::Li {
                rd: r(6),
                imm: i64::MIN,
            },
            Instr::Mov { rd: r(1), ra: r(2) },
            Instr::Nop,
            Instr::Br {
                cond: BrCond::Geu,
                ra: r(7),
                rb: Src::Imm(42),
                target: 9,
            },
            Instr::Jmp { target: 0 },
            Instr::Load {
                rd: r(8),
                slot: 65535,
            },
            Instr::Store {
                rs: r(9),
                rframe: r(10),
                slot: 3,
            },
            Instr::Falloc {
                rd: r(11),
                thread: ThreadId(7),
                sc: 12,
            },
            Instr::Ffree { rframe: r(1) },
            Instr::Stop,
            Instr::Read {
                rd: r(12),
                ra: r(13),
                off: -128,
            },
            Instr::Write {
                rs: r(14),
                ra: r(15),
                off: i32::MAX,
            },
            Instr::LsLoad {
                rd: r(16),
                ra: r(17),
                off: 4,
            },
            Instr::LsStore {
                rs: r(18),
                ra: r(19),
                off: -4,
            },
            Instr::DmaGet {
                rls: r(2),
                ls_off: 0,
                rmem: r(20),
                mem_off: 64,
                bytes: Src::Imm(128),
                tag: 5,
            },
            Instr::DmaGetStrided {
                rls: r(2),
                ls_off: 16,
                rmem: r(21),
                mem_off: 0,
                elem_bytes: 4,
                count: Src::Reg(r(22)),
                stride: Src::Imm(1024),
                tag: 6,
            },
            Instr::DmaPut {
                rls: r(2),
                ls_off: 8,
                rmem: r(23),
                mem_off: -8,
                bytes: Src::Reg(r(24)),
                tag: 7,
            },
            Instr::DmaYield,
            Instr::DmaWait { tag: 31 },
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        for i in sample_instrs() {
            let mut buf = Vec::new();
            encode_instr(&i, &mut buf);
            let mut c = Cursor { buf: &buf, pos: 0 };
            let back = decode_one(&mut c).unwrap_or_else(|e| panic!("{i}: {e}"));
            assert_eq!(back, i);
            assert_eq!(c.pos, buf.len(), "{i}: trailing bytes");
        }
    }

    #[test]
    fn stream_of_instructions_round_trips() {
        let instrs = sample_instrs();
        let mut buf = Vec::new();
        for i in &instrs {
            encode_instr(i, &mut buf);
        }
        let mut c = Cursor { buf: &buf, pos: 0 };
        let decoded: Vec<Instr> = (0..instrs.len())
            .map(|_| decode_one(&mut c).unwrap())
            .collect();
        assert_eq!(decoded, instrs);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut buf = Vec::new();
        encode_instr(&Instr::Li { rd: r(3), imm: 1 }, &mut buf);
        for cut in 1..buf.len() {
            let mut c = Cursor {
                buf: &buf[..cut],
                pos: 0,
            };
            assert_eq!(decode_one(&mut c), Err(DecodeError::Truncated), "cut {cut}");
        }
    }

    #[test]
    fn bad_opcode_is_an_error() {
        let mut c = Cursor {
            buf: &[0x7F],
            pos: 0,
        };
        assert_eq!(decode_one(&mut c), Err(DecodeError::BadOpcode(0x7F)));
    }

    #[test]
    fn bad_register_is_an_error() {
        let buf = [OP_MOV, 64, 0];
        let mut c = Cursor { buf: &buf, pos: 0 };
        assert_eq!(decode_one(&mut c), Err(DecodeError::BadRegister(64)));
    }

    #[test]
    fn program_image_round_trips() {
        use crate::builder::{ProgramBuilder, ThreadBuilder};
        let mut pb = ProgramBuilder::new();
        pb.global_words("tbl", &[1, -2, 3]);
        let main = pb.declare("main");
        let mut t = ThreadBuilder::new("main");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(4), r(3), 0);
        t.begin_ps();
        t.ffree_self();
        t.stop();
        pb.define(main, t);
        pb.set_entry(main, 1);
        let p = pb.build();
        let img = encode_program(&p);
        assert_eq!(&img[..4], &MAGIC);
        let back = decode_program(&img).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_program(b"NOPE....."), Err(DecodeError::BadMagic));
        assert_eq!(decode_program(b"DT"), Err(DecodeError::Truncated));
    }

    #[test]
    fn code_size_reports_bytes() {
        let t = ThreadCode {
            name: "t".into(),
            code: vec![Instr::Nop, Instr::Stop],
            blocks: BlockMap::default(),
            frame_slots: 0,
            prefetch_bytes: 0,
            fallback: None,
        };
        assert_eq!(code_size(&t), 2);
    }
}
