//! Instruction definitions.
//!
//! The instruction set has three layers:
//!
//! 1. a conventional scalar RISC core (ALU ops, immediates, branches);
//! 2. the DTA thread-management instructions from the paper's Table 1:
//!    [`Instr::Falloc`], [`Instr::Ffree`], [`Instr::Stop`], frame
//!    [`Instr::Load`] / [`Instr::Store`];
//! 3. the memory-decoupling layer: blocking main-memory [`Instr::Read`] /
//!    [`Instr::Write`] ("READ and WRITE ... cause stalls in the pipeline",
//!    §2), non-blocking local-store [`Instr::LsLoad`] / [`Instr::LsStore`],
//!    and the DMA programming instructions of Table 3
//!    ([`Instr::DmaGet`], [`Instr::DmaGetStrided`], [`Instr::DmaPut`],
//!    [`Instr::DmaYield`], [`Instr::DmaWait`]).
//!
//! Every instruction reports its [`IClass`]; the pipeline issues at most one
//! *compute*-class and one *memory*-class (anything else) instruction per
//! cycle, mirroring the SPU's even/odd pipe split.

use crate::program::ThreadId;
use crate::reg::Reg;
use std::fmt;

/// ALU operations over 64-bit two's-complement integers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; division by zero yields 0 (the hardware raises no
    /// trap — simulated programs are expected to guard).
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 0..64).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Set-if-less-than, signed (result 0/1).
    Slt,
    /// Set-if-less-than, unsigned (result 0/1).
    Sltu,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl AluOp {
    /// Pure evaluation of the operation; this is the single source of ALU
    /// semantics, shared by the pipeline and the compiler's constant
    /// propagation.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
            AluOp::Sra => a >> (b as u64 & 63),
            AluOp::Slt => (a < b) as i64,
            AluOp::Sltu => ((a as u64) < (b as u64)) as i64,
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Min => "min",
            AluOp::Max => "max",
        }
    }

    /// All ALU operations (used by the assembler and by property tests).
    pub const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Min,
        AluOp::Max,
    ];
}

/// Branch conditions (compare two operands, branch when true).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BrCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BrCond {
    /// Evaluates the condition.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => a < b,
            BrCond::Ge => a >= b,
            BrCond::Ltu => (a as u64) < (b as u64),
            BrCond::Geu => (a as u64) >= (b as u64),
        }
    }

    /// Assembler mnemonic (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BrCond::Eq => "beq",
            BrCond::Ne => "bne",
            BrCond::Lt => "blt",
            BrCond::Ge => "bge",
            BrCond::Ltu => "bltu",
            BrCond::Geu => "bgeu",
        }
    }

    /// All branch conditions.
    pub const ALL: [BrCond; 6] = [
        BrCond::Eq,
        BrCond::Ne,
        BrCond::Lt,
        BrCond::Ge,
        BrCond::Ltu,
        BrCond::Geu,
    ];
}

/// A flexible second operand: register or signed immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Src {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i32),
}

impl Src {
    /// The register, if this operand is one.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Src::Reg(r) => Some(r),
            Src::Imm(_) => None,
        }
    }

    /// The immediate, if this operand is one.
    #[inline]
    pub fn as_imm(self) -> Option<i32> {
        match self {
            Src::Reg(_) => None,
            Src::Imm(i) => Some(i),
        }
    }
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Self {
        Src::Reg(r)
    }
}

impl From<i32> for Src {
    fn from(i: i32) -> Self {
        Src::Imm(i)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(i) => write!(f, "#{i}"),
        }
    }
}

/// Instruction class — drives dual-issue pairing and the per-class dynamic
/// instruction counts of the paper's Table 5.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IClass {
    /// ALU / immediate / move — issued on the even (compute) pipe.
    Compute,
    /// Branches — odd pipe.
    Branch,
    /// Frame-memory `LOAD`/`STORE` (Table 5 columns LOAD / STORE).
    Frame,
    /// Main-memory `READ`/`WRITE` (Table 5 columns READ / WRITE).
    Mem,
    /// Local-store accesses to prefetched data.
    Ls,
    /// DMA programming and synchronisation.
    Dma,
    /// Scheduler interactions (`FALLOC`, `FFREE`, `STOP`).
    Sched,
}

impl IClass {
    /// Does this class issue on the odd (memory) pipe?
    #[inline]
    pub fn is_odd_pipe(self) -> bool {
        !matches!(self, IClass::Compute)
    }
}

/// A fixed-capacity register list returned by [`Instr::defs`] /
/// [`Instr::uses`]; avoids heap allocation on the simulator's hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegList {
    regs: [Reg; 4],
    len: u8,
}

impl RegList {
    fn new() -> Self {
        RegList {
            regs: [crate::reg::ZERO_REG; 4],
            len: 0,
        }
    }

    fn push(&mut self, r: Reg) {
        self.regs[self.len as usize] = r;
        self.len += 1;
    }

    fn push_src(&mut self, s: Src) {
        if let Src::Reg(r) = s {
            self.push(r);
        }
    }

    /// The registers as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }

    /// Is the list empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of registers in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, r: Reg) -> bool {
        self.as_slice().contains(&r)
    }
}

impl std::ops::Deref for RegList {
    type Target = [Reg];
    fn deref(&self) -> &[Reg] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a RegList {
    type Item = Reg;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Reg>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

/// One machine instruction.
///
/// Branch targets are absolute instruction indices within the owning
/// thread's code (labels are resolved by the builder/assembler).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    // ---- compute class -------------------------------------------------
    /// `rd = op(ra, rb)`.
    Alu {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        rb: Src,
    },
    /// Load a 64-bit immediate: `rd = imm`.
    Li { rd: Reg, imm: i64 },
    /// Register move: `rd = ra`.
    Mov { rd: Reg, ra: Reg },
    /// No operation.
    Nop,

    // ---- control -------------------------------------------------------
    /// Conditional branch: `if cond(ra, rb) goto target`.
    Br {
        cond: BrCond,
        ra: Reg,
        rb: Src,
        target: u32,
    },
    /// Unconditional jump.
    Jmp { target: u32 },

    // ---- frame memory (Table 1: LOAD / STORE) ---------------------------
    /// `rd = self.frame[slot]` — read the thread's own frame (held in the
    /// local store; completes asynchronously through the scoreboard).
    Load { rd: Reg, slot: u16 },
    /// `frame(rframe)[slot] = rs` — store into *another* thread's frame,
    /// decrementing its synchronisation counter. `rframe` holds an encoded
    /// [`crate::FramePtr`].
    Store { rs: Reg, rframe: Reg, slot: u16 },

    // ---- scheduler (Table 1: FALLOC / FFREE / STOP) ----------------------
    /// Ask the scheduler for a new frame for an instance of `thread` with
    /// synchronisation count `sc`; the encoded frame pointer is written to
    /// `rd`. Blocks until the FALLOC-Response arrives (LSE stall).
    Falloc { rd: Reg, thread: ThreadId, sc: u16 },
    /// Release the frame whose pointer is in `rframe` (normally the
    /// thread's own, `r1`).
    Ffree { rframe: Reg },
    /// Notify the LSE that the thread has completed.
    Stop,

    // ---- main memory (the accesses prefetching removes) ------------------
    /// `rd = mainmem[ra + off]` (32-bit, sign-extended). Blocks the
    /// pipeline until the response returns (paper §2).
    Read { rd: Reg, ra: Reg, off: i32 },
    /// `mainmem[ra + off] = rs` (32-bit). Posted, but must win a spot in
    /// the memory request queue.
    Write { rs: Reg, ra: Reg, off: i32 },

    // ---- local store (prefetched data) -----------------------------------
    /// `rd = localstore[ra + off]` (32-bit, sign-extended; asynchronous,
    /// scoreboarded — "LS accesses are mostly hidden", §4.3).
    LsLoad { rd: Reg, ra: Reg, off: i32 },
    /// `localstore[ra + off] = rs` (32-bit).
    LsStore { rs: Reg, ra: Reg, off: i32 },

    // ---- DMA (Table 3 operands: LS address, MEM address, size, tag) ------
    /// Program the MFC to copy `bytes` bytes from main memory
    /// `[rmem + mem_off]` into the local store `[rls + ls_off]`, tagged
    /// `tag`.
    DmaGet {
        rls: Reg,
        ls_off: i32,
        rmem: Reg,
        mem_off: i32,
        bytes: Src,
        tag: u8,
    },
    /// Strided gather: `count` elements of `elem_bytes` bytes, consecutive
    /// in the local store, `stride` bytes apart in main memory — "in case
    /// where thread accesses array with a certain stride ... DMA performs
    /// it in one transaction" (§3).
    DmaGetStrided {
        rls: Reg,
        ls_off: i32,
        rmem: Reg,
        mem_off: i32,
        elem_bytes: u16,
        count: Src,
        stride: Src,
        tag: u8,
    },
    /// Program the MFC to copy `bytes` bytes from the local store to main
    /// memory.
    DmaPut {
        rls: Reg,
        ls_off: i32,
        rmem: Reg,
        mem_off: i32,
        bytes: Src,
        tag: u8,
    },
    /// End of a PF code block: if this thread instance has outstanding DMA
    /// transfers, yield the pipeline and move to the *Wait for DMA* state
    /// (Fig. 4); the scheduler re-readies the thread when the MFC signals
    /// completion. Never busy-waits.
    DmaYield,
    /// Blocking wait for the completion of DMA transfers with tag `tag`
    /// (occupies the pipeline; used for post-store DMA draining and as an
    /// ablation of the non-blocking yield).
    DmaWait { tag: u8 },
}

impl Instr {
    /// The instruction's class.
    #[inline]
    pub fn class(&self) -> IClass {
        match self {
            Instr::Alu { .. } | Instr::Li { .. } | Instr::Mov { .. } | Instr::Nop => {
                IClass::Compute
            }
            Instr::Br { .. } | Instr::Jmp { .. } => IClass::Branch,
            Instr::Load { .. } | Instr::Store { .. } => IClass::Frame,
            Instr::Falloc { .. } | Instr::Ffree { .. } | Instr::Stop => IClass::Sched,
            Instr::Read { .. } | Instr::Write { .. } => IClass::Mem,
            Instr::LsLoad { .. } | Instr::LsStore { .. } => IClass::Ls,
            Instr::DmaGet { .. }
            | Instr::DmaGetStrided { .. }
            | Instr::DmaPut { .. }
            | Instr::DmaYield
            | Instr::DmaWait { .. } => IClass::Dma,
        }
    }

    /// Register(s) written by this instruction.
    pub fn defs(&self) -> RegList {
        let mut l = RegList::new();
        match *self {
            Instr::Alu { rd, .. }
            | Instr::Li { rd, .. }
            | Instr::Mov { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Falloc { rd, .. }
            | Instr::Read { rd, .. }
            | Instr::LsLoad { rd, .. } => l.push(rd),
            _ => {}
        }
        l
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> RegList {
        let mut l = RegList::new();
        match *self {
            Instr::Alu { ra, rb, .. } => {
                l.push(ra);
                l.push_src(rb);
            }
            Instr::Mov { ra, .. } => l.push(ra),
            Instr::Br { ra, rb, .. } => {
                l.push(ra);
                l.push_src(rb);
            }
            Instr::Store { rs, rframe, .. } => {
                l.push(rs);
                l.push(rframe);
            }
            Instr::Ffree { rframe } => l.push(rframe),
            Instr::Read { ra, .. } | Instr::LsLoad { ra, .. } => l.push(ra),
            Instr::Write { rs, ra, .. } | Instr::LsStore { rs, ra, .. } => {
                l.push(rs);
                l.push(ra);
            }
            Instr::DmaGet {
                rls, rmem, bytes, ..
            }
            | Instr::DmaPut {
                rls, rmem, bytes, ..
            } => {
                l.push(rls);
                l.push(rmem);
                l.push_src(bytes);
            }
            Instr::DmaGetStrided {
                rls,
                rmem,
                count,
                stride,
                ..
            } => {
                l.push(rls);
                l.push(rmem);
                l.push_src(count);
                l.push_src(stride);
            }
            Instr::Li { .. }
            | Instr::Nop
            | Instr::Jmp { .. }
            | Instr::Load { .. }
            | Instr::Falloc { .. }
            | Instr::Stop
            | Instr::DmaYield
            | Instr::DmaWait { .. } => {}
        }
        l
    }

    /// `true` for instructions that end a thread's execution.
    #[inline]
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Stop)
    }

    /// `true` for control-flow instructions.
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Br { .. } | Instr::Jmp { .. })
    }

    /// Branch/jump target, if any.
    #[inline]
    pub fn target(&self) -> Option<u32> {
        match *self {
            Instr::Br { target, .. } | Instr::Jmp { target } => Some(target),
            _ => None,
        }
    }

    /// Rewrites the branch/jump target (used by code transformation
    /// passes). No-op for non-control instructions.
    pub fn set_target(&mut self, new: u32) {
        match self {
            Instr::Br { target, .. } | Instr::Jmp { target } => *target = new,
            _ => {}
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, ra, rb } => write!(f, "{} {rd}, {ra}, {rb}", op.mnemonic()),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Mov { rd, ra } => write!(f, "mov {rd}, {ra}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Br {
                cond,
                ra,
                rb,
                target,
            } => write!(f, "{} {ra}, {rb}, {target}", cond.mnemonic()),
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::Load { rd, slot } => write!(f, "load {rd}, {slot}"),
            Instr::Store { rs, rframe, slot } => write!(f, "store {rs}, {rframe}, {slot}"),
            Instr::Falloc { rd, thread, sc } => write!(f, "falloc {rd}, t{}, {sc}", thread.0),
            Instr::Ffree { rframe } => write!(f, "ffree {rframe}"),
            Instr::Stop => write!(f, "stop"),
            Instr::Read { rd, ra, off } => write!(f, "read {rd}, {off}({ra})"),
            Instr::Write { rs, ra, off } => write!(f, "write {rs}, {off}({ra})"),
            Instr::LsLoad { rd, ra, off } => write!(f, "lsload {rd}, {off}({ra})"),
            Instr::LsStore { rs, ra, off } => write!(f, "lsstore {rs}, {off}({ra})"),
            Instr::DmaGet {
                rls,
                ls_off,
                rmem,
                mem_off,
                bytes,
                tag,
            } => write!(f, "dmaget {ls_off}({rls}), {mem_off}({rmem}), {bytes}, tag{tag}"),
            Instr::DmaGetStrided {
                rls,
                ls_off,
                rmem,
                mem_off,
                elem_bytes,
                count,
                stride,
                tag,
            } => write!(
                f,
                "dmagets {ls_off}({rls}), {mem_off}({rmem}), elem={elem_bytes}, count={count}, stride={stride}, tag{tag}"
            ),
            Instr::DmaPut {
                rls,
                ls_off,
                rmem,
                mem_off,
                bytes,
                tag,
            } => write!(f, "dmaput {ls_off}({rls}), {mem_off}({rmem}), {bytes}, tag{tag}"),
            Instr::DmaYield => write!(f, "dmayield"),
            Instr::DmaWait { tag } => write!(f, "dmawait tag{tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), -1);
        assert_eq!(AluOp::Mul.eval(-4, 3), -12);
        assert_eq!(AluOp::Div.eval(7, 2), 3);
        assert_eq!(AluOp::Rem.eval(7, 2), 1);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shr.eval(-1, 60), 15);
        assert_eq!(AluOp::Sra.eval(-16, 2), -4);
        assert_eq!(AluOp::Slt.eval(-1, 0), 1);
        assert_eq!(AluOp::Sltu.eval(-1, 0), 0);
        assert_eq!(AluOp::Min.eval(3, -5), -5);
        assert_eq!(AluOp::Max.eval(3, -5), 3);
    }

    #[test]
    fn alu_eval_no_division_trap() {
        assert_eq!(AluOp::Div.eval(42, 0), 0);
        assert_eq!(AluOp::Rem.eval(42, 0), 0);
        // MIN_INT / -1 must not overflow-panic.
        assert_eq!(AluOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(AluOp::Rem.eval(i64::MIN, -1), 0);
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(AluOp::Shl.eval(1, 64), 1);
        assert_eq!(AluOp::Shl.eval(1, 65), 2);
        assert_eq!(AluOp::Shr.eval(8, 67), 1);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Eq.eval(4, 4));
        assert!(BrCond::Ne.eval(4, 5));
        assert!(BrCond::Lt.eval(-2, 1));
        assert!(BrCond::Ge.eval(1, 1));
        assert!(BrCond::Ltu.eval(1, u64::MAX as i64));
        assert!(BrCond::Geu.eval(-1, 1)); // -1 is huge unsigned
    }

    #[test]
    fn classes() {
        assert_eq!(
            Instr::Alu {
                op: AluOp::Add,
                rd: r(3),
                ra: r(4),
                rb: Src::Imm(1)
            }
            .class(),
            IClass::Compute
        );
        assert_eq!(Instr::Load { rd: r(3), slot: 0 }.class(), IClass::Frame);
        assert_eq!(
            Instr::Read {
                rd: r(3),
                ra: r(4),
                off: 0
            }
            .class(),
            IClass::Mem
        );
        assert_eq!(Instr::Stop.class(), IClass::Sched);
        assert_eq!(Instr::DmaYield.class(), IClass::Dma);
        assert!(IClass::Mem.is_odd_pipe());
        assert!(!IClass::Compute.is_odd_pipe());
    }

    #[test]
    fn defs_and_uses() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: r(3),
            ra: r(4),
            rb: Src::Reg(r(5)),
        };
        assert_eq!(i.defs().as_slice(), &[r(3)]);
        assert_eq!(i.uses().as_slice(), &[r(4), r(5)]);

        let i = Instr::Alu {
            op: AluOp::Add,
            rd: r(3),
            ra: r(4),
            rb: Src::Imm(7),
        };
        assert_eq!(i.uses().as_slice(), &[r(4)]);

        let i = Instr::Store {
            rs: r(6),
            rframe: r(7),
            slot: 2,
        };
        assert!(i.defs().is_empty());
        assert_eq!(i.uses().as_slice(), &[r(6), r(7)]);

        let i = Instr::DmaGetStrided {
            rls: r(2),
            ls_off: 0,
            rmem: r(8),
            mem_off: 4,
            elem_bytes: 4,
            count: Src::Reg(r(9)),
            stride: Src::Imm(128),
            tag: 1,
        };
        assert_eq!(i.uses().as_slice(), &[r(2), r(8), r(9)]);
        assert!(i.defs().is_empty());
    }

    #[test]
    fn falloc_defines_frame_register() {
        let i = Instr::Falloc {
            rd: r(10),
            thread: ThreadId(2),
            sc: 3,
        };
        assert_eq!(i.defs().as_slice(), &[r(10)]);
        assert!(i.uses().is_empty());
    }

    #[test]
    fn control_helpers() {
        let mut b = Instr::Br {
            cond: BrCond::Ne,
            ra: r(3),
            rb: Src::Imm(0),
            target: 7,
        };
        assert!(b.is_control());
        assert_eq!(b.target(), Some(7));
        b.set_target(12);
        assert_eq!(b.target(), Some(12));
        assert!(!Instr::Nop.is_control());
        assert_eq!(Instr::Nop.target(), None);
        assert!(Instr::Stop.is_terminator());
    }

    #[test]
    fn display_formats() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: r(3),
            ra: r(4),
            rb: Src::Imm(-2),
        };
        assert_eq!(i.to_string(), "add r3, r4, #-2");
        assert_eq!(
            Instr::Read {
                rd: r(5),
                ra: r(6),
                off: 16
            }
            .to_string(),
            "read r5, 16(r6)"
        );
        assert_eq!(
            Instr::DmaGet {
                rls: r(2),
                ls_off: 0,
                rmem: r(8),
                mem_off: 64,
                bytes: Src::Imm(128),
                tag: 3
            }
            .to_string(),
            "dmaget 0(r2), 64(r8), #128, tag3"
        );
    }

    #[test]
    fn reglist_dedup_not_required_but_iteration_works() {
        let i = Instr::Write {
            rs: r(4),
            ra: r(4),
            off: 0,
        };
        let uses: Vec<_> = (&i.uses()).into_iter().collect();
        assert_eq!(uses, vec![r(4), r(4)]);
        assert!(i.uses().contains(r(4)));
        assert_eq!(i.uses().len(), 2);
    }
}
