//! Programs, threads, and code blocks.
//!
//! A DTA [`Program`] is a set of [`ThreadCode`]s (one per static thread in
//! the source), an entry thread started by the host processor (the Cell PPE
//! in the paper's platform), and a global data segment laid out in main
//! memory. Each thread's code is partitioned into the four code blocks of
//! the paper's Figure 3: **PF** (prefetch — programs the DMA unit),
//! **PL** (pre-load — reads inputs from the frame / local store into
//! registers), **EX** (execute — register-to-register compute), and
//! **PS** (post-store — writes results to consumer frames).

use crate::instr::{IClass, Instr};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a static thread (an index into [`Program::threads`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The thread's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The four code blocks of a DTA thread (paper Fig. 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CodeBlock {
    /// PreFetch: programs the DMA unit; cycles here are the paper's
    /// "Prefetching" overhead category.
    Pf,
    /// Pre-load: reads thread inputs from the frame (and prefetched data
    /// from the local store) into registers.
    Pl,
    /// Execute: register-to-register computation. In the *original* DTA it
    /// may still contain main-memory READ/WRITEs — the stalls the paper's
    /// mechanism removes.
    Ex,
    /// Post-store: sends results to the frames of consumer threads.
    Ps,
}

impl CodeBlock {
    /// Short lowercase name (`pf`, `pl`, `ex`, `ps`).
    pub fn name(self) -> &'static str {
        match self {
            CodeBlock::Pf => "pf",
            CodeBlock::Pl => "pl",
            CodeBlock::Ex => "ex",
            CodeBlock::Ps => "ps",
        }
    }

    /// All blocks in program order.
    pub const ALL: [CodeBlock; 4] = [CodeBlock::Pf, CodeBlock::Pl, CodeBlock::Ex, CodeBlock::Ps];
}

impl fmt::Display for CodeBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Block boundaries within a thread's code: instruction indices
/// `[0, pf_end)` = PF, `[pf_end, pl_end)` = PL, `[pl_end, ex_end)` = EX,
/// `[ex_end, code.len())` = PS.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BlockMap {
    /// End of the PF block (0 when the thread has no prefetch code).
    pub pf_end: u32,
    /// End of the PL block.
    pub pl_end: u32,
    /// End of the EX block.
    pub ex_end: u32,
}

impl BlockMap {
    /// Which block does the instruction at `pc` belong to?
    #[inline]
    pub fn block_of(&self, pc: u32) -> CodeBlock {
        if pc < self.pf_end {
            CodeBlock::Pf
        } else if pc < self.pl_end {
            CodeBlock::Pl
        } else if pc < self.ex_end {
            CodeBlock::Ex
        } else {
            CodeBlock::Ps
        }
    }

    /// Instruction index range of a block (`len` = total code length).
    pub fn range(&self, block: CodeBlock, len: u32) -> std::ops::Range<u32> {
        match block {
            CodeBlock::Pf => 0..self.pf_end,
            CodeBlock::Pl => self.pf_end..self.pl_end,
            CodeBlock::Ex => self.pl_end..self.ex_end,
            CodeBlock::Ps => self.ex_end..len,
        }
    }

    /// Monotonicity check against a code length.
    pub fn is_well_formed(&self, len: u32) -> bool {
        self.pf_end <= self.pl_end && self.pl_end <= self.ex_end && self.ex_end <= len
    }
}

/// The code of one static thread.
#[derive(Clone, PartialEq, Debug)]
pub struct ThreadCode {
    /// Human-readable name (used by the assembler and traces).
    pub name: String,
    /// The instructions; branch targets are absolute indices into this
    /// vector.
    pub code: Vec<Instr>,
    /// PF/PL/EX/PS boundaries.
    pub blocks: BlockMap,
    /// Number of 64-bit input slots the thread's frame must provide.
    pub frame_slots: u16,
    /// Bytes of local-store prefetch buffer each *instance* of this thread
    /// needs (0 when the thread has no PF block).
    pub prefetch_bytes: u32,
    /// Degradation fallback: a thread with the same inputs and results
    /// but no PF block (the baseline decoupled READ/WRITE path). When a
    /// PE's DMA engine exhausts its retry budget, new instances of this
    /// thread on that PE run the fallback body instead — correct results
    /// at degraded performance. `None` means no fallback is available.
    pub fallback: Option<ThreadId>,
}

impl ThreadCode {
    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> u32 {
        self.code.len() as u32
    }

    /// `true` when the thread has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The code block containing `pc`.
    #[inline]
    pub fn block_of(&self, pc: u32) -> CodeBlock {
        self.blocks.block_of(pc)
    }

    /// Static instruction counts per class.
    pub fn class_histogram(&self) -> BTreeMap<IClass, u64> {
        let mut h = BTreeMap::new();
        for i in &self.code {
            *h.entry(i.class()).or_insert(0) += 1;
        }
        h
    }

    /// `true` if any instruction accesses main memory directly — i.e. the
    /// thread is a candidate for the prefetch transformation.
    pub fn has_global_accesses(&self) -> bool {
        self.code.iter().any(|i| i.class() == IClass::Mem)
    }

    /// Disassembly listing with block annotations.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_block = None;
        for (pc, instr) in self.code.iter().enumerate() {
            let block = self.block_of(pc as u32);
            if last_block != Some(block) {
                let _ = writeln!(out, ".block {}", block.name());
                last_block = Some(block);
            }
            let _ = writeln!(out, "  {pc:4}: {instr}");
        }
        out
    }
}

// `IClass` needs `Ord` for the histogram's BTreeMap key.
impl PartialOrd for IClass {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IClass {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as u8).cmp(&(*other as u8))
    }
}

/// One global object in main memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GlobalDef {
    /// Symbol name.
    pub name: String,
    /// Assigned byte address in main memory.
    pub addr: u64,
    /// Initial contents; zero-filled objects may use
    /// [`GlobalDef::zeroed`]. The object's size is `data.len()`.
    pub data: Vec<u8>,
}

impl GlobalDef {
    /// A zero-initialised global of `bytes` bytes.
    pub fn zeroed(name: impl Into<String>, addr: u64, bytes: usize) -> Self {
        GlobalDef {
            name: name.into(),
            addr,
            data: vec![0; bytes],
        }
    }

    /// A global initialised from 32-bit little-endian words (the machine's
    /// scalar access width).
    pub fn from_words(name: impl Into<String>, addr: u64, words: &[i32]) -> Self {
        let mut data = Vec::with_capacity(words.len() * 4);
        for w in words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        GlobalDef {
            name: name.into(),
            addr,
            data,
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Byte range occupied in main memory.
    #[inline]
    pub fn byte_range(&self) -> std::ops::Range<u64> {
        self.addr..self.addr + self.data.len() as u64
    }
}

/// A complete DTA program.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// All static threads; [`ThreadId`] indexes this vector.
    pub threads: Vec<ThreadCode>,
    /// The thread the host starts.
    pub entry: ThreadId,
    /// Number of argument slots the host stores into the entry thread's
    /// frame (= the entry instance's synchronisation count).
    pub entry_args: u16,
    /// Global data laid out in main memory.
    pub globals: Vec<GlobalDef>,
}

impl Program {
    /// Looks up a thread's code.
    #[inline]
    pub fn thread(&self, id: ThreadId) -> &ThreadCode {
        &self.threads[id.index()]
    }

    /// Looks up a thread by name.
    pub fn thread_by_name(&self, name: &str) -> Option<(ThreadId, &ThreadCode)> {
        self.threads
            .iter()
            .enumerate()
            .find(|(_, t)| t.name == name)
            .map(|(i, t)| (ThreadId(i as u32), t))
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Total static instruction count.
    pub fn static_instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.code.len() as u64).sum()
    }

    /// Static per-class histogram summed over all threads.
    pub fn class_histogram(&self) -> BTreeMap<IClass, u64> {
        let mut h = BTreeMap::new();
        for t in &self.threads {
            for (k, v) in t.class_histogram() {
                *h.entry(k).or_insert(0) += v;
            }
        }
        h
    }

    /// Largest prefetch-buffer requirement over all threads (used to size
    /// the per-frame prefetch region).
    pub fn max_prefetch_bytes(&self) -> u32 {
        self.threads
            .iter()
            .map(|t| t.prefetch_bytes)
            .max()
            .unwrap_or(0)
    }

    /// `true` if any thread still performs direct main-memory accesses.
    pub fn has_global_accesses(&self) -> bool {
        self.threads.iter().any(|t| t.has_global_accesses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Src};
    use crate::reg::r;

    fn tiny_thread() -> ThreadCode {
        ThreadCode {
            name: "t".into(),
            code: vec![
                Instr::Load { rd: r(3), slot: 0 },
                Instr::Alu {
                    op: AluOp::Add,
                    rd: r(4),
                    ra: r(3),
                    rb: Src::Imm(1),
                },
                Instr::Read {
                    rd: r(5),
                    ra: r(4),
                    off: 0,
                },
                Instr::Stop,
            ],
            blocks: BlockMap {
                pf_end: 0,
                pl_end: 1,
                ex_end: 3,
            },
            frame_slots: 1,
            prefetch_bytes: 0,
            fallback: None,
        }
    }

    #[test]
    fn block_of_maps_ranges() {
        let t = tiny_thread();
        assert_eq!(t.block_of(0), CodeBlock::Pl);
        assert_eq!(t.block_of(1), CodeBlock::Ex);
        assert_eq!(t.block_of(2), CodeBlock::Ex);
        assert_eq!(t.block_of(3), CodeBlock::Ps);
    }

    #[test]
    fn blockmap_with_pf() {
        let b = BlockMap {
            pf_end: 2,
            pl_end: 5,
            ex_end: 9,
        };
        assert_eq!(b.block_of(0), CodeBlock::Pf);
        assert_eq!(b.block_of(1), CodeBlock::Pf);
        assert_eq!(b.block_of(2), CodeBlock::Pl);
        assert_eq!(b.block_of(4), CodeBlock::Pl);
        assert_eq!(b.block_of(5), CodeBlock::Ex);
        assert_eq!(b.block_of(8), CodeBlock::Ex);
        assert_eq!(b.block_of(9), CodeBlock::Ps);
        assert_eq!(b.range(CodeBlock::Pf, 12), 0..2);
        assert_eq!(b.range(CodeBlock::Ps, 12), 9..12);
        assert!(b.is_well_formed(12));
        assert!(!b.is_well_formed(8));
    }

    #[test]
    fn malformed_blockmap_detected() {
        let b = BlockMap {
            pf_end: 5,
            pl_end: 3,
            ex_end: 9,
        };
        assert!(!b.is_well_formed(10));
    }

    #[test]
    fn class_histogram_counts() {
        let t = tiny_thread();
        let h = t.class_histogram();
        assert_eq!(h[&IClass::Frame], 1);
        assert_eq!(h[&IClass::Compute], 1);
        assert_eq!(h[&IClass::Mem], 1);
        assert_eq!(h[&IClass::Sched], 1);
        assert!(t.has_global_accesses());
    }

    #[test]
    fn global_from_words_layout() {
        let g = GlobalDef::from_words("tbl", 0x1000, &[1, -1, 256]);
        assert_eq!(g.size(), 12);
        assert_eq!(g.byte_range(), 0x1000..0x100C);
        assert_eq!(&g.data[0..4], &[1, 0, 0, 0]);
        assert_eq!(&g.data[4..8], &[0xFF, 0xFF, 0xFF, 0xFF]);
        assert_eq!(&g.data[8..12], &[0, 1, 0, 0]);
    }

    #[test]
    fn zeroed_global() {
        let g = GlobalDef::zeroed("buf", 0, 64);
        assert_eq!(g.size(), 64);
        assert!(g.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            threads: vec![tiny_thread()],
            entry: ThreadId(0),
            entry_args: 1,
            globals: vec![GlobalDef::zeroed("g", 16, 4)],
        };
        assert!(p.thread_by_name("t").is_some());
        assert!(p.thread_by_name("missing").is_none());
        assert!(p.global("g").is_some());
        assert!(p.global("h").is_none());
        assert_eq!(p.static_instructions(), 4);
        assert!(p.has_global_accesses());
        assert_eq!(p.max_prefetch_bytes(), 0);
    }

    #[test]
    fn disassembly_contains_blocks_and_instrs() {
        let t = tiny_thread();
        let d = t.disassemble();
        assert!(d.contains(".block pl"));
        assert!(d.contains(".block ex"));
        assert!(d.contains(".block ps"));
        assert!(d.contains("load r3, 0"));
        assert!(d.contains("stop"));
    }
}
