//! Program/thread builder DSL.
//!
//! The paper's benchmarks were "hand-coded for the original DTA"; this
//! module is the hand-coding surface. [`ProgramBuilder`] owns the thread
//! name space and the global-data layout, while [`ThreadBuilder`] provides
//! label-based control flow and per-code-block emission:
//!
//! ```
//! use dta_isa::{ProgramBuilder, ThreadBuilder, reg::r, AluOp, BrCond};
//!
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare("main");
//! let table = pb.global_words("table", &[1, 2, 3, 4]);
//!
//! let mut t = ThreadBuilder::new("main");
//! t.begin_pl();
//! t.load(r(3), 0); // argument 0
//! t.begin_ex();
//! t.li(r(4), table as i64);
//! t.read(r(5), r(4), 0); // global access (a prefetch candidate)
//! t.alu(AluOp::Add, r(5), r(5), r(3));
//! t.begin_ps();
//! t.stop();
//! pb.define(main, t);
//! pb.set_entry(main, 1);
//! let program = pb.build();
//! assert_eq!(program.threads.len(), 1);
//! ```
//!
//! Builder misuse (unbound labels, duplicate names, undefined threads) is a
//! programming error in the benchmark being written, so the builder panics
//! with a descriptive message rather than returning `Result`.

use crate::frame::FramePtr;
use crate::instr::{AluOp, BrCond, Instr, Src};
use crate::program::{BlockMap, CodeBlock, GlobalDef, Program, ThreadCode, ThreadId};
use crate::reg::{Reg, FRAME_PTR_REG};
use std::collections::HashMap;

/// Default base address of the global data segment in main memory. Kept
/// away from address 0 so that null-ish pointers fault loudly in tests.
pub const DEFAULT_GLOBAL_BASE: u64 = 0x0010_0000;

/// Alignment applied to every global object (DMA-transfer friendly).
pub const GLOBAL_ALIGN: u64 = 16;

/// A forward-referenceable branch target inside one [`ThreadBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Label(u32);

/// Builds one thread's code. See the [module docs](self) for an example.
#[derive(Debug)]
pub struct ThreadBuilder {
    name: String,
    code: Vec<Instr>,
    /// Branch-site fixups: (instruction index, label).
    fixups: Vec<(u32, Label)>,
    /// Bound label positions (`u32::MAX` = unbound).
    labels: Vec<u32>,
    pf_end: Option<u32>,
    pl_end: Option<u32>,
    ex_end: Option<u32>,
    /// Last block explicitly begun (None = no markers: the whole body
    /// defaults to EX).
    current_block: Option<CodeBlock>,
    frame_slots: Option<u16>,
    prefetch_bytes: u32,
}

impl ThreadBuilder {
    /// Starts building a thread named `name`. Emission starts in the PF
    /// block; call [`begin_pl`](Self::begin_pl) /
    /// [`begin_ex`](Self::begin_ex) / [`begin_ps`](Self::begin_ps) to move
    /// through the blocks (skipping blocks is fine).
    pub fn new(name: impl Into<String>) -> Self {
        ThreadBuilder {
            name: name.into(),
            code: Vec::new(),
            fixups: Vec::new(),
            labels: Vec::new(),
            pf_end: None,
            pl_end: None,
            ex_end: None,
            current_block: None,
            frame_slots: None,
            prefetch_bytes: 0,
        }
    }

    /// Current instruction index (the pc the next emitted instruction will
    /// occupy).
    #[inline]
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    // ---- block boundaries -------------------------------------------------

    /// Marks the start of the PF block explicitly (emission already
    /// starts in PF; this only records that the body's tail belongs to PF
    /// when no later block is begun).
    pub fn begin_pf(&mut self) {
        assert!(
            self.current_block.is_none(),
            "{}: PF must be the first block",
            self.name
        );
        self.current_block = Some(CodeBlock::Pf);
    }

    /// Ends the PF block.
    pub fn begin_pl(&mut self) {
        assert!(
            self.pf_end.is_none(),
            "{}: PL block already begun",
            self.name
        );
        self.pf_end = Some(self.here());
        self.current_block = Some(CodeBlock::Pl);
    }

    /// Ends the PL (and PF, if still open) block.
    pub fn begin_ex(&mut self) {
        if self.pf_end.is_none() {
            self.pf_end = Some(self.here());
        }
        assert!(
            self.pl_end.is_none(),
            "{}: EX block already begun",
            self.name
        );
        self.pl_end = Some(self.here());
        self.current_block = Some(CodeBlock::Ex);
    }

    /// Ends the EX (and earlier, if still open) block.
    pub fn begin_ps(&mut self) {
        if self.pf_end.is_none() {
            self.pf_end = Some(self.here());
        }
        if self.pl_end.is_none() {
            self.pl_end = Some(self.here());
        }
        assert!(
            self.ex_end.is_none(),
            "{}: PS block already begun",
            self.name
        );
        self.ex_end = Some(self.here());
        self.current_block = Some(CodeBlock::Ps);
    }

    /// Overrides the auto-computed frame slot count (the default is the
    /// highest `load` slot + 1).
    pub fn frame_slots(&mut self, slots: u16) {
        self.frame_slots = Some(slots);
    }

    /// Declares how many bytes of local-store prefetch buffer an instance
    /// of this thread needs.
    pub fn prefetch_bytes(&mut self, bytes: u32) {
        self.prefetch_bytes = bytes;
    }

    // ---- labels ------------------------------------------------------------

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(u32::MAX);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert_eq!(*slot, u32::MAX, "{}: label bound twice", self.name);
        *slot = self.code.len() as u32;
    }

    /// Creates a label already bound to the current position.
    pub fn label_here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    // ---- raw emission --------------------------------------------------------

    /// Emits a raw instruction, returning its pc.
    pub fn emit(&mut self, i: Instr) -> u32 {
        let pc = self.here();
        self.code.push(i);
        pc
    }

    // ---- compute ---------------------------------------------------------------

    /// `rd = op(ra, rb)`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: impl Into<Src>) {
        self.emit(Instr::Alu {
            op,
            rd,
            ra,
            rb: rb.into(),
        });
    }

    /// `rd = ra + rb`.
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: impl Into<Src>) {
        self.alu(AluOp::Add, rd, ra, rb);
    }

    /// `rd = ra - rb`.
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: impl Into<Src>) {
        self.alu(AluOp::Sub, rd, ra, rb);
    }

    /// `rd = ra * rb`.
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: impl Into<Src>) {
        self.alu(AluOp::Mul, rd, ra, rb);
    }

    /// `rd = ra & rb`.
    pub fn and(&mut self, rd: Reg, ra: Reg, rb: impl Into<Src>) {
        self.alu(AluOp::And, rd, ra, rb);
    }

    /// `rd = ra >> rb` (logical).
    pub fn shr(&mut self, rd: Reg, ra: Reg, rb: impl Into<Src>) {
        self.alu(AluOp::Shr, rd, ra, rb);
    }

    /// `rd = ra << rb`.
    pub fn shl(&mut self, rd: Reg, ra: Reg, rb: impl Into<Src>) {
        self.alu(AluOp::Shl, rd, ra, rb);
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Instr::Li { rd, imm });
    }

    /// `rd = ra`.
    pub fn mov(&mut self, rd: Reg, ra: Reg) {
        self.emit(Instr::Mov { rd, ra });
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    // ---- control -----------------------------------------------------------------

    /// Conditional branch to `label`.
    pub fn br(&mut self, cond: BrCond, ra: Reg, rb: impl Into<Src>, label: Label) {
        let pc = self.emit(Instr::Br {
            cond,
            ra,
            rb: rb.into(),
            target: u32::MAX,
        });
        self.fixups.push((pc, label));
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        let pc = self.emit(Instr::Jmp { target: u32::MAX });
        self.fixups.push((pc, label));
    }

    // ---- frame / scheduler ----------------------------------------------------------

    /// `rd = frame[slot]`.
    pub fn load(&mut self, rd: Reg, slot: u16) {
        self.emit(Instr::Load { rd, slot });
    }

    /// `frame(rframe)[slot] = rs`.
    pub fn store(&mut self, rs: Reg, rframe: Reg, slot: u16) {
        self.emit(Instr::Store { rs, rframe, slot });
    }

    /// Allocate a frame for an instance of `thread` with sync count `sc`.
    pub fn falloc(&mut self, rd: Reg, thread: ThreadId, sc: u16) {
        self.emit(Instr::Falloc { rd, thread, sc });
    }

    /// Free the frame pointed to by `rframe`.
    pub fn ffree(&mut self, rframe: Reg) {
        self.emit(Instr::Ffree { rframe });
    }

    /// Free the thread's own frame (`r1`).
    pub fn ffree_self(&mut self) {
        self.ffree(FRAME_PTR_REG);
    }

    /// End the thread.
    pub fn stop(&mut self) {
        self.emit(Instr::Stop);
    }

    // ---- memory ------------------------------------------------------------------------

    /// Blocking main-memory read: `rd = mem[ra + off]`.
    pub fn read(&mut self, rd: Reg, ra: Reg, off: i32) {
        self.emit(Instr::Read { rd, ra, off });
    }

    /// Main-memory write: `mem[ra + off] = rs`.
    pub fn write(&mut self, rs: Reg, ra: Reg, off: i32) {
        self.emit(Instr::Write { rs, ra, off });
    }

    /// Local-store load: `rd = ls[ra + off]`.
    pub fn lsload(&mut self, rd: Reg, ra: Reg, off: i32) {
        self.emit(Instr::LsLoad { rd, ra, off });
    }

    /// Local-store store: `ls[ra + off] = rs`.
    pub fn lsstore(&mut self, rs: Reg, ra: Reg, off: i32) {
        self.emit(Instr::LsStore { rs, ra, off });
    }

    // ---- DMA ------------------------------------------------------------------------------

    /// Program a contiguous main-memory → local-store transfer.
    #[allow(clippy::too_many_arguments)]
    pub fn dmaget(
        &mut self,
        rls: Reg,
        ls_off: i32,
        rmem: Reg,
        mem_off: i32,
        bytes: impl Into<Src>,
        tag: u8,
    ) {
        self.emit(Instr::DmaGet {
            rls,
            ls_off,
            rmem,
            mem_off,
            bytes: bytes.into(),
            tag,
        });
    }

    /// Program a strided gather.
    #[allow(clippy::too_many_arguments)]
    pub fn dmagets(
        &mut self,
        rls: Reg,
        ls_off: i32,
        rmem: Reg,
        mem_off: i32,
        elem_bytes: u16,
        count: impl Into<Src>,
        stride: impl Into<Src>,
        tag: u8,
    ) {
        self.emit(Instr::DmaGetStrided {
            rls,
            ls_off,
            rmem,
            mem_off,
            elem_bytes,
            count: count.into(),
            stride: stride.into(),
            tag,
        });
    }

    /// Program a local-store → main-memory transfer.
    #[allow(clippy::too_many_arguments)]
    pub fn dmaput(
        &mut self,
        rls: Reg,
        ls_off: i32,
        rmem: Reg,
        mem_off: i32,
        bytes: impl Into<Src>,
        tag: u8,
    ) {
        self.emit(Instr::DmaPut {
            rls,
            ls_off,
            rmem,
            mem_off,
            bytes: bytes.into(),
            tag,
        });
    }

    /// Non-blocking wait for all outstanding DMA of this instance (ends a
    /// PF block).
    pub fn dmayield(&mut self) {
        self.emit(Instr::DmaYield);
    }

    /// Blocking wait for `tag`.
    pub fn dmawait(&mut self, tag: u8) {
        self.emit(Instr::DmaWait { tag });
    }

    // ---- finish ----------------------------------------------------------------------------

    /// Finalises the thread: resolves labels, computes block boundaries and
    /// the frame slot count.
    ///
    /// # Panics
    ///
    /// On unbound labels referenced by branches.
    pub fn build(mut self) -> ThreadCode {
        for (pc, label) in &self.fixups {
            let pos = self.labels[label.0 as usize];
            assert_ne!(
                pos,
                u32::MAX,
                "{}: branch at pc {} references an unbound label",
                self.name,
                pc
            );
            self.code[*pc as usize].set_target(pos);
        }
        let len = self.code.len() as u32;
        // The body's tail belongs to the last block begun; earlier
        // boundaries were recorded by the begin_* calls.
        let (pf_end, pl_end, ex_end) = match self.current_block {
            None => (0, 0, len), // no markers: the whole body is EX
            Some(CodeBlock::Pf) => (len, len, len),
            Some(CodeBlock::Pl) => {
                let pf = self.pf_end.expect("begin_pl records pf_end");
                (pf, len, len)
            }
            Some(CodeBlock::Ex) => {
                let pf = self.pf_end.expect("begin_ex records pf_end");
                let pl = self.pl_end.expect("begin_ex records pl_end");
                (pf, pl, len)
            }
            Some(CodeBlock::Ps) => (
                self.pf_end.expect("begin_ps records pf_end"),
                self.pl_end.expect("begin_ps records pl_end"),
                self.ex_end.expect("begin_ps records ex_end"),
            ),
        };
        let frame_slots = self.frame_slots.unwrap_or_else(|| {
            self.code
                .iter()
                .filter_map(|i| match i {
                    Instr::Load { slot, .. } => Some(*slot + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        });
        ThreadCode {
            name: self.name,
            code: self.code,
            blocks: BlockMap {
                pf_end,
                pl_end,
                ex_end,
            },
            frame_slots,
            prefetch_bytes: self.prefetch_bytes,
            fallback: None,
        }
    }
}

/// Builds a whole [`Program`]: thread name space, global data layout, and
/// the entry point.
#[derive(Debug)]
pub struct ProgramBuilder {
    threads: Vec<Option<ThreadCode>>,
    names: HashMap<String, ThreadId>,
    globals: Vec<GlobalDef>,
    global_names: HashMap<String, u64>,
    next_global_addr: u64,
    entry: Option<(ThreadId, u16)>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// New builder with the [`DEFAULT_GLOBAL_BASE`] data segment base.
    pub fn new() -> Self {
        Self::with_global_base(DEFAULT_GLOBAL_BASE)
    }

    /// New builder with a custom data segment base address.
    pub fn with_global_base(base: u64) -> Self {
        ProgramBuilder {
            threads: Vec::new(),
            names: HashMap::new(),
            globals: Vec::new(),
            global_names: HashMap::new(),
            next_global_addr: base,
            entry: None,
        }
    }

    /// Declares a thread name, returning its [`ThreadId`] so other threads
    /// can `FALLOC` it before its code is defined.
    ///
    /// # Panics
    ///
    /// On duplicate names.
    pub fn declare(&mut self, name: impl Into<String>) -> ThreadId {
        let name = name.into();
        assert!(
            !self.names.contains_key(&name),
            "thread {name:?} declared twice"
        );
        let id = ThreadId(self.threads.len() as u32);
        self.names.insert(name, id);
        self.threads.push(None);
        id
    }

    /// Defines the code of a previously declared thread.
    ///
    /// # Panics
    ///
    /// If `id` is unknown, already defined, or the builder's name does not
    /// match the declared name.
    pub fn define(&mut self, id: ThreadId, tb: ThreadBuilder) {
        let declared = self
            .names
            .iter()
            .find(|(_, &v)| v == id)
            .map(|(k, _)| k.clone())
            .unwrap_or_else(|| panic!("thread {id} was never declared"));
        assert_eq!(
            declared, tb.name,
            "thread {id} declared as {declared:?} but defined as {:?}",
            tb.name
        );
        let slot = &mut self.threads[id.index()];
        assert!(slot.is_none(), "thread {declared:?} defined twice");
        *slot = Some(tb.build());
    }

    /// Declares and defines in one step.
    pub fn add_thread(&mut self, tb: ThreadBuilder) -> ThreadId {
        let id = self.declare(tb.name.clone());
        self.define(id, tb);
        id
    }

    /// Lays out a zero-initialised global of `bytes` bytes, returning its
    /// address.
    pub fn global_zeroed(&mut self, name: impl Into<String>, bytes: usize) -> u64 {
        self.push_global(name.into(), vec![0; bytes])
    }

    /// Lays out a global initialised from 32-bit words, returning its
    /// address.
    pub fn global_words(&mut self, name: impl Into<String>, words: &[i32]) -> u64 {
        let mut data = Vec::with_capacity(words.len() * 4);
        for w in words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        self.push_global(name.into(), data)
    }

    /// Lays out a global from raw bytes, returning its address.
    pub fn global_bytes(&mut self, name: impl Into<String>, data: Vec<u8>) -> u64 {
        self.push_global(name.into(), data)
    }

    /// Lays out a global at an explicit address (used by the assembler to
    /// preserve a disassembled program's exact layout).
    pub fn global_bytes_at(&mut self, name: impl Into<String>, addr: u64, data: Vec<u8>) -> u64 {
        let name = name.into();
        assert!(
            !self.global_names.contains_key(&name),
            "global {name:?} declared twice"
        );
        let end = (addr + data.len() as u64).div_ceil(GLOBAL_ALIGN) * GLOBAL_ALIGN;
        self.next_global_addr = self.next_global_addr.max(end);
        self.global_names.insert(name.clone(), addr);
        self.globals.push(GlobalDef { name, addr, data });
        addr
    }

    fn push_global(&mut self, name: String, data: Vec<u8>) -> u64 {
        let addr = self.next_global_addr;
        self.global_bytes_at(name, addr, data)
    }

    /// Address of a previously laid-out global.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        self.global_names.get(name).copied()
    }

    /// Sets the entry thread and the number of argument slots the host
    /// stores into its frame.
    pub fn set_entry(&mut self, id: ThreadId, args: u16) {
        self.entry = Some((id, args));
    }

    /// Finalises the program.
    ///
    /// # Panics
    ///
    /// If a declared thread was never defined or no entry was set.
    pub fn build(self) -> Program {
        let mut name_of = vec![String::new(); self.threads.len()];
        for (n, id) in &self.names {
            name_of[id.index()] = n.clone();
        }
        let threads: Vec<ThreadCode> = self
            .threads
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                t.unwrap_or_else(|| panic!("thread {:?} declared but never defined", name_of[i]))
            })
            .collect();
        let (entry, entry_args) = self.entry.expect("no entry thread set");
        Program {
            threads,
            entry,
            entry_args,
            globals: self.globals,
        }
    }
}

/// Helper: the encoded frame pointer a host would pass for PE 0, frame 0 —
/// occasionally useful in tests.
pub fn host_frame_ptr() -> u64 {
    FramePtr::new(0, 0).encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::reg::r;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut t = ThreadBuilder::new("loop");
        t.li(r(3), 4);
        let top = t.label_here(); // backward target
        let done = t.new_label(); // forward target
        t.sub(r(3), r(3), 1);
        t.br(BrCond::Eq, r(3), 0, done);
        t.jmp(top);
        t.bind(done);
        t.stop();
        let code = t.build();
        assert_eq!(code.code[2].target(), Some(4)); // beq -> bind point
        assert_eq!(code.code[3].target(), Some(1)); // jmp -> top
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut t = ThreadBuilder::new("bad");
        let l = t.new_label();
        t.jmp(l);
        let _ = t.build();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut t = ThreadBuilder::new("bad");
        let l = t.new_label();
        t.bind(l);
        t.bind(l);
    }

    #[test]
    fn block_boundaries_recorded() {
        let mut t = ThreadBuilder::new("blocks");
        t.dmaget(r(2), 0, r(3), 0, 64, 0);
        t.dmayield();
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.add(r(4), r(3), 1);
        t.begin_ps();
        t.stop();
        let code = t.build();
        assert_eq!(code.blocks.pf_end, 2);
        assert_eq!(code.blocks.pl_end, 3);
        assert_eq!(code.blocks.ex_end, 4);
        assert_eq!(code.block_of(0), crate::CodeBlock::Pf);
        assert_eq!(code.block_of(4), crate::CodeBlock::Ps);
    }

    #[test]
    fn skipping_blocks_is_allowed() {
        let mut t = ThreadBuilder::new("noblocks");
        t.begin_ex(); // no PF, no PL
        t.li(r(3), 1);
        t.stop();
        let code = t.build();
        assert_eq!(code.blocks.pf_end, 0);
        assert_eq!(code.blocks.pl_end, 0);
        assert_eq!(code.block_of(0), crate::CodeBlock::Ex);
    }

    #[test]
    fn default_blockmap_puts_body_in_ex() {
        let mut t = ThreadBuilder::new("plain");
        t.li(r(3), 1);
        t.stop();
        let code = t.build();
        // No markers: PF and PL empty, everything up to the end is EX.
        assert_eq!(code.block_of(0), crate::CodeBlock::Ex);
        assert_eq!(code.block_of(1), crate::CodeBlock::Ex);
    }

    #[test]
    fn frame_slots_inferred_from_loads() {
        let mut t = ThreadBuilder::new("slots");
        t.load(r(3), 0);
        t.load(r(4), 5);
        t.stop();
        assert_eq!(t.build().frame_slots, 6);
    }

    #[test]
    fn frame_slots_override() {
        let mut t = ThreadBuilder::new("slots");
        t.load(r(3), 0);
        t.frame_slots(9);
        t.stop();
        assert_eq!(t.build().frame_slots, 9);
    }

    #[test]
    fn program_builder_layout_and_lookup() {
        let mut pb = ProgramBuilder::new();
        let a = pb.global_words("a", &[1, 2, 3]); // 12 bytes -> aligned to 16
        let b = pb.global_zeroed("b", 4);
        assert_eq!(a, DEFAULT_GLOBAL_BASE);
        assert_eq!(b, DEFAULT_GLOBAL_BASE + 16);
        assert_eq!(pb.global_addr("a"), Some(a));
        assert_eq!(pb.global_addr("c"), None);

        let main = pb.declare("main");
        let mut t = ThreadBuilder::new("main");
        t.stop();
        pb.define(main, t);
        pb.set_entry(main, 0);
        let p = pb.build();
        assert_eq!(p.entry, main);
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.global("a").unwrap().addr, a);
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn undefined_thread_panics() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main");
        let _ghost = pb.declare("ghost");
        let mut t = ThreadBuilder::new("main");
        t.stop();
        pb.define(main, t);
        pb.set_entry(main, 0);
        let _ = pb.build();
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_thread_name_panics() {
        let mut pb = ProgramBuilder::new();
        pb.declare("main");
        pb.declare("main");
    }

    #[test]
    #[should_panic(expected = "no entry thread set")]
    fn missing_entry_panics() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main");
        let mut t = ThreadBuilder::new("main");
        t.stop();
        pb.define(main, t);
        let _ = pb.build();
    }

    #[test]
    fn add_thread_shorthand() {
        let mut pb = ProgramBuilder::new();
        let mut t = ThreadBuilder::new("only");
        t.stop();
        let id = pb.add_thread(t);
        pb.set_entry(id, 0);
        let p = pb.build();
        assert_eq!(p.thread(id).name, "only");
        assert!(matches!(p.thread(id).code[0], Instr::Stop));
    }

    #[test]
    fn emitted_helpers_produce_expected_instrs() {
        let mut t = ThreadBuilder::new("x");
        t.dmagets(r(2), 8, r(5), 0, 4, 32, 128, 2);
        t.dmaput(r(2), 0, r(6), 4, 64, 1);
        t.dmawait(1);
        t.ffree_self();
        t.stop();
        let code = t.build();
        assert!(matches!(
            code.code[0],
            Instr::DmaGetStrided {
                elem_bytes: 4,
                tag: 2,
                ..
            }
        ));
        assert!(matches!(code.code[1], Instr::DmaPut { tag: 1, .. }));
        assert!(matches!(code.code[2], Instr::DmaWait { tag: 1 }));
        assert!(matches!(
            code.code[3],
            Instr::Ffree {
                rframe: FRAME_PTR_REG
            }
        ));
    }
}
