//! Structural validation of programs.
//!
//! The simulator assumes a handful of well-formedness invariants; this pass
//! checks them ahead of time so that simulator panics always indicate
//! simulator bugs, not malformed input:
//!
//! * block maps are monotone and in range;
//! * branch targets are in range;
//! * every thread contains a `STOP` (threads must terminate to release
//!   their pipeline);
//! * frame `LOAD` slots are within the thread's declared frame size;
//! * `FALLOC` targets exist and their SC is non-zero when the target reads
//!   inputs;
//! * `DMAYIELD` appears only inside a PF block (the non-blocking wait state
//!   of Fig. 4 is entered from the prefetch phase);
//! * DMA tags fit the MFC tag space;
//! * threads with DMA instructions declare a prefetch buffer;
//! * globals do not overlap;
//! * the entry thread's inputs are covered by the host-provided arguments.

use crate::instr::Instr;
use crate::program::{CodeBlock, Program, ThreadCode, ThreadId};
use std::fmt;

/// Number of MFC tag groups (Cell MFC has 32 tag groups).
pub const MAX_DMA_TAGS: u8 = 32;

/// A validation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// The block map is not monotone / exceeds the code length.
    MalformedBlockMap { thread: String },
    /// A thread has no instructions.
    EmptyThread { thread: String },
    /// A branch or jump target is out of range.
    BranchOutOfRange {
        thread: String,
        pc: u32,
        target: u32,
    },
    /// No `STOP` anywhere in the thread.
    MissingStop { thread: String },
    /// A frame `LOAD` reads a slot beyond the declared frame size.
    LoadSlotOutOfRange {
        thread: String,
        pc: u32,
        slot: u16,
        frame_slots: u16,
    },
    /// `FALLOC` references a non-existent thread.
    UnknownFallocTarget {
        thread: String,
        pc: u32,
        target: ThreadId,
    },
    /// `FALLOC` would create an instance that waits forever (SC is zero but
    /// the target reads frame inputs) or can never become ready (SC smaller
    /// than the highest input slot the target reads).
    InsufficientSyncCount {
        thread: String,
        pc: u32,
        target: ThreadId,
        sc: u16,
        needed: u16,
    },
    /// `DMAYIELD` outside a PF block.
    DmaYieldOutsidePf { thread: String, pc: u32 },
    /// DMA tag out of range.
    DmaTagOutOfRange { thread: String, pc: u32, tag: u8 },
    /// A thread programs DMA but declares no prefetch buffer.
    MissingPrefetchBuffer { thread: String, pc: u32 },
    /// Two globals overlap in main memory.
    OverlappingGlobals { a: String, b: String },
    /// The entry thread reads more input slots than the host provides.
    EntryArgsTooFew { needed: u16, provided: u16 },
    /// The entry thread id is out of range.
    BadEntry,
    /// A degradation fallback is unusable: out of range, different frame
    /// shape, still prefetching, or itself falling back (chains would make
    /// degraded dispatch unbounded).
    BadFallback {
        thread: String,
        target: ThreadId,
        reason: FallbackProblem,
    },
}

/// Why a `ThreadCode::fallback` link is rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FallbackProblem {
    /// The fallback thread id is out of range.
    OutOfRange,
    /// The fallback declares a different number of frame slots, so a
    /// frame granted for the original cannot serve it.
    FrameMismatch,
    /// The fallback still has a PF block / prefetch buffer — it would not
    /// avoid the faulty DMA path.
    StillPrefetches,
    /// The fallback itself names a fallback (chains are not allowed).
    Chained,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidationError::*;
        match self {
            MalformedBlockMap { thread } => write!(f, "thread {thread}: malformed block map"),
            EmptyThread { thread } => write!(f, "thread {thread}: empty code"),
            BranchOutOfRange { thread, pc, target } => {
                write!(f, "thread {thread}: pc {pc}: branch target {target} out of range")
            }
            MissingStop { thread } => write!(f, "thread {thread}: no STOP instruction"),
            LoadSlotOutOfRange { thread, pc, slot, frame_slots } => write!(
                f,
                "thread {thread}: pc {pc}: LOAD slot {slot} >= frame size {frame_slots}"
            ),
            UnknownFallocTarget { thread, pc, target } => {
                write!(f, "thread {thread}: pc {pc}: FALLOC of unknown thread {target}")
            }
            InsufficientSyncCount { thread, pc, target, sc, needed } => write!(
                f,
                "thread {thread}: pc {pc}: FALLOC {target} with sc={sc} but target reads {needed} slots"
            ),
            DmaYieldOutsidePf { thread, pc } => {
                write!(f, "thread {thread}: pc {pc}: DMAYIELD outside the PF block")
            }
            DmaTagOutOfRange { thread, pc, tag } => {
                write!(f, "thread {thread}: pc {pc}: DMA tag {tag} out of range")
            }
            MissingPrefetchBuffer { thread, pc } => write!(
                f,
                "thread {thread}: pc {pc}: DMA transfer but prefetch_bytes == 0"
            ),
            OverlappingGlobals { a, b } => write!(f, "globals {a:?} and {b:?} overlap"),
            EntryArgsTooFew { needed, provided } => write!(
                f,
                "entry thread reads {needed} input slots but the host provides {provided}"
            ),
            BadEntry => write!(f, "entry thread id out of range"),
            BadFallback {
                thread,
                target,
                reason,
            } => write!(f, "thread {thread}: bad fallback {target}: {reason:?}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a single thread against a program context (needed for FALLOC
/// target checks). `threads` is the full thread table.
pub fn validate_thread(
    thread: &ThreadCode,
    threads: &[ThreadCode],
    errors: &mut Vec<ValidationError>,
) {
    let name = || thread.name.clone();
    let len = thread.len();

    if thread.is_empty() {
        errors.push(ValidationError::EmptyThread { thread: name() });
        return;
    }
    if !thread.blocks.is_well_formed(len) {
        errors.push(ValidationError::MalformedBlockMap { thread: name() });
    }
    if !thread.code.iter().any(|i| i.is_terminator()) {
        errors.push(ValidationError::MissingStop { thread: name() });
    }

    let mut uses_dma_transfer = None;
    for (pc, instr) in thread.code.iter().enumerate() {
        let pc = pc as u32;
        if let Some(target) = instr.target() {
            if target >= len {
                errors.push(ValidationError::BranchOutOfRange {
                    thread: name(),
                    pc,
                    target,
                });
            }
        }
        match *instr {
            Instr::Load { slot, .. } if slot >= thread.frame_slots => {
                errors.push(ValidationError::LoadSlotOutOfRange {
                    thread: name(),
                    pc,
                    slot,
                    frame_slots: thread.frame_slots,
                });
            }
            Instr::Falloc {
                thread: target, sc, ..
            } => match threads.get(target.index()) {
                None => errors.push(ValidationError::UnknownFallocTarget {
                    thread: name(),
                    pc,
                    target,
                }),
                Some(t) => {
                    if sc < t.frame_slots {
                        errors.push(ValidationError::InsufficientSyncCount {
                            thread: name(),
                            pc,
                            target,
                            sc,
                            needed: t.frame_slots,
                        });
                    }
                }
            },
            Instr::DmaYield if thread.block_of(pc) != CodeBlock::Pf => {
                errors.push(ValidationError::DmaYieldOutsidePf { thread: name(), pc });
            }
            Instr::DmaGet { tag, .. }
            | Instr::DmaGetStrided { tag, .. }
            | Instr::DmaPut { tag, .. }
            | Instr::DmaWait { tag } => {
                if tag >= MAX_DMA_TAGS {
                    errors.push(ValidationError::DmaTagOutOfRange {
                        thread: name(),
                        pc,
                        tag,
                    });
                }
                if matches!(instr, Instr::DmaGet { .. } | Instr::DmaGetStrided { .. }) {
                    uses_dma_transfer.get_or_insert(pc);
                }
            }
            _ => {}
        }
    }
    if let Some(pc) = uses_dma_transfer {
        if thread.prefetch_bytes == 0 {
            errors.push(ValidationError::MissingPrefetchBuffer { thread: name(), pc });
        }
    }
}

/// Validates a whole program. Returns all problems found (empty = valid).
pub fn validate_program(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    for thread in &program.threads {
        validate_thread(thread, &program.threads, &mut errors);
    }

    // Globals must not overlap.
    let mut sorted: Vec<_> = program.globals.iter().collect();
    sorted.sort_by_key(|g| g.addr);
    for pair in sorted.windows(2) {
        if pair[0].byte_range().end > pair[1].addr {
            errors.push(ValidationError::OverlappingGlobals {
                a: pair[0].name.clone(),
                b: pair[1].name.clone(),
            });
        }
    }

    // Fallback links must be substitutable at frame-grant time: same frame
    // shape, no prefetching of their own, and no chains.
    for thread in &program.threads {
        let Some(target) = thread.fallback else {
            continue;
        };
        let bad = |reason| ValidationError::BadFallback {
            thread: thread.name.clone(),
            target,
            reason,
        };
        match program.threads.get(target.index()) {
            None => errors.push(bad(FallbackProblem::OutOfRange)),
            Some(fb) => {
                if fb.frame_slots != thread.frame_slots {
                    errors.push(bad(FallbackProblem::FrameMismatch));
                }
                if fb.blocks.pf_end != 0 || fb.prefetch_bytes != 0 {
                    errors.push(bad(FallbackProblem::StillPrefetches));
                }
                if fb.fallback.is_some() {
                    errors.push(bad(FallbackProblem::Chained));
                }
            }
        }
    }

    match program.threads.get(program.entry.index()) {
        None => errors.push(ValidationError::BadEntry),
        Some(entry) => {
            if entry.frame_slots > program.entry_args {
                errors.push(ValidationError::EntryArgsTooFew {
                    needed: entry.frame_slots,
                    provided: program.entry_args,
                });
            }
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ProgramBuilder, ThreadBuilder};
    use crate::program::{BlockMap, GlobalDef};
    use crate::reg::r;

    fn ok_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main");
        let worker = pb.declare("worker");

        let mut t = ThreadBuilder::new("main");
        t.begin_ex();
        t.falloc(r(3), worker, 1);
        t.li(r(4), 7);
        t.begin_ps();
        t.store(r(4), r(3), 0);
        t.ffree_self();
        t.stop();
        pb.define(main, t);

        let mut w = ThreadBuilder::new("worker");
        w.begin_pl();
        w.load(r(3), 0);
        w.begin_ps();
        w.ffree_self();
        w.stop();
        pb.define(worker, w);

        pb.set_entry(main, 0);
        pb.build()
    }

    #[test]
    fn valid_program_passes() {
        assert!(validate_program(&ok_program()).is_empty());
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut p = ok_program();
        p.threads[0].code[1] = Instr::Jmp { target: 999 };
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::BranchOutOfRange { target: 999, .. })));
    }

    #[test]
    fn missing_stop_detected() {
        let mut p = ok_program();
        for i in p.threads[1].code.iter_mut() {
            if i.is_terminator() {
                *i = Instr::Nop;
            }
        }
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::MissingStop { .. })));
    }

    #[test]
    fn load_slot_out_of_range_detected() {
        let mut p = ok_program();
        p.threads[1].frame_slots = 1;
        p.threads[1].code[0] = Instr::Load { rd: r(3), slot: 4 };
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::LoadSlotOutOfRange { slot: 4, .. })));
    }

    #[test]
    fn unknown_falloc_target_detected() {
        let mut p = ok_program();
        p.threads[0].code[0] = Instr::Falloc {
            rd: r(3),
            thread: crate::ThreadId(42),
            sc: 1,
        };
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownFallocTarget { .. })));
    }

    #[test]
    fn insufficient_sync_count_detected() {
        let mut p = ok_program();
        // worker loads slot 0 -> needs sc >= 1, but falloc says 0.
        p.threads[0].code[0] = Instr::Falloc {
            rd: r(3),
            thread: crate::ThreadId(1),
            sc: 0,
        };
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::InsufficientSyncCount {
                sc: 0,
                needed: 1,
                ..
            }
        )));
    }

    #[test]
    fn dmayield_outside_pf_detected() {
        let mut p = ok_program();
        // main's blocks: everything is EX/PS; put a DMAYIELD in EX.
        p.threads[0].code[1] = Instr::DmaYield;
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DmaYieldOutsidePf { .. })));
    }

    #[test]
    fn dma_without_prefetch_buffer_detected() {
        let mut t = ThreadBuilder::new("main");
        t.dmaget(r(2), 0, r(3), 0, 64, 0);
        t.dmayield();
        t.begin_ex();
        t.stop();
        let mut pb = ProgramBuilder::new();
        let id = pb.add_thread(t);
        pb.set_entry(id, 0);
        let p = pb.build();
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::MissingPrefetchBuffer { .. })));
    }

    #[test]
    fn dma_tag_out_of_range_detected() {
        let mut t = ThreadBuilder::new("main");
        t.prefetch_bytes(64);
        t.dmaget(r(2), 0, r(3), 0, 64, 33);
        t.dmayield();
        t.begin_ex();
        t.stop();
        let mut pb = ProgramBuilder::new();
        let id = pb.add_thread(t);
        pb.set_entry(id, 0);
        let errs = validate_program(&pb.build());
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DmaTagOutOfRange { tag: 33, .. })));
    }

    #[test]
    fn overlapping_globals_detected() {
        let mut p = ok_program();
        p.globals = vec![
            GlobalDef::zeroed("a", 0x1000, 32),
            GlobalDef::zeroed("b", 0x1010, 8),
        ];
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::OverlappingGlobals { .. })));
    }

    #[test]
    fn entry_args_too_few_detected() {
        let mut p = ok_program();
        p.entry = crate::ThreadId(1); // worker reads 1 slot
        p.entry_args = 0;
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::EntryArgsTooFew {
                needed: 1,
                provided: 0
            }
        )));
    }

    #[test]
    fn malformed_blockmap_detected() {
        let mut p = ok_program();
        p.threads[0].blocks = BlockMap {
            pf_end: 3,
            pl_end: 1,
            ex_end: 2,
        };
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::MalformedBlockMap { .. })));
    }

    #[test]
    fn fallback_checks() {
        // A fallback with identical shape and no PF block is legal…
        let mut p = ok_program();
        p.threads[0].fallback = Some(crate::ThreadId(1));
        p.threads[0].frame_slots = p.threads[1].frame_slots;
        p.entry_args = p.threads[0].frame_slots;
        assert!(
            validate_program(&p).is_empty(),
            "{:?}",
            validate_program(&p)
        );

        // …but an out-of-range target is not…
        let mut p = ok_program();
        p.threads[0].fallback = Some(crate::ThreadId(9));
        assert!(validate_program(&p).iter().any(|e| matches!(
            e,
            ValidationError::BadFallback {
                reason: FallbackProblem::OutOfRange,
                ..
            }
        )));

        // …nor a frame-shape mismatch…
        let mut p = ok_program();
        p.threads[0].fallback = Some(crate::ThreadId(1));
        p.threads[0].frame_slots = p.threads[1].frame_slots + 3;
        assert!(validate_program(&p).iter().any(|e| matches!(
            e,
            ValidationError::BadFallback {
                reason: FallbackProblem::FrameMismatch,
                ..
            }
        )));

        // …nor a fallback that still prefetches…
        let mut p = ok_program();
        p.threads[0].fallback = Some(crate::ThreadId(1));
        p.threads[0].frame_slots = p.threads[1].frame_slots;
        p.threads[1].prefetch_bytes = 64;
        assert!(validate_program(&p).iter().any(|e| matches!(
            e,
            ValidationError::BadFallback {
                reason: FallbackProblem::StillPrefetches,
                ..
            }
        )));

        // …nor a chain of fallbacks.
        let mut p = ok_program();
        p.threads[0].fallback = Some(crate::ThreadId(1));
        p.threads[0].frame_slots = p.threads[1].frame_slots;
        p.threads[1].fallback = Some(crate::ThreadId(0));
        assert!(validate_program(&p).iter().any(|e| matches!(
            e,
            ValidationError::BadFallback {
                reason: FallbackProblem::Chained,
                ..
            }
        )));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidationError::LoadSlotOutOfRange {
            thread: "w".into(),
            pc: 3,
            slot: 9,
            frame_slots: 2,
        };
        let s = e.to_string();
        assert!(s.contains('w') && s.contains('9') && s.contains('2'));
    }
}
