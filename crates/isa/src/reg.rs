//! Architectural registers.
//!
//! The machine has [`NUM_REGS`] 64-bit general-purpose registers per thread
//! context. Register `r0` reads as zero and ignores writes; `r1` and `r2`
//! are initialised by the hardware when a thread starts (self frame pointer
//! and prefetch-buffer base, respectively) but are otherwise ordinary.

use std::fmt;

/// Number of architectural registers per thread context.
pub const NUM_REGS: usize = 64;

/// An architectural register index (`r0` .. `r63`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

/// `r0`: hard-wired zero.
pub const ZERO_REG: Reg = Reg(0);
/// `r1`: initialised to the thread's own frame pointer (encoded, see
/// [`crate::FramePtr`]).
pub const FRAME_PTR_REG: Reg = Reg(1);
/// `r2`: initialised to the local-store byte address of the thread
/// instance's prefetch buffer.
pub const PREFETCH_BASE_REG: Reg = Reg(2);

impl Reg {
    /// Creates a register, panicking if `idx >= NUM_REGS`.
    ///
    /// Use [`Reg::try_new`] for fallible construction (e.g. in the
    /// assembler).
    #[inline]
    pub const fn new(idx: u8) -> Self {
        assert!((idx as usize) < NUM_REGS, "register index out of range");
        Reg(idx)
    }

    /// Fallible constructor.
    #[inline]
    pub const fn try_new(idx: u8) -> Option<Self> {
        if (idx as usize) < NUM_REGS {
            Some(Reg(idx))
        } else {
            None
        }
    }

    /// The register's index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` for `r0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterator over every architectural register.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Convenience constructor used pervasively by builders and tests.
#[inline]
pub const fn r(idx: u8) -> Reg {
    Reg::new(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(ZERO_REG.is_zero());
        assert_eq!(ZERO_REG.index(), 0);
        assert!(!r(1).is_zero());
    }

    #[test]
    fn conventions_occupy_low_registers() {
        assert_eq!(FRAME_PTR_REG.index(), 1);
        assert_eq!(PREFETCH_BASE_REG.index(), 2);
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(63).is_some());
        assert!(Reg::try_new(64).is_none());
        assert!(Reg::try_new(255).is_none());
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(64);
    }

    #[test]
    fn all_yields_every_register_once() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), NUM_REGS);
        assert_eq!(v[0], ZERO_REG);
        assert_eq!(v[63], r(63));
    }

    #[test]
    fn display_format() {
        assert_eq!(r(17).to_string(), "r17");
        assert_eq!(format!("{:?}", r(3)), "r3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(r(3) < r(10));
        let mut v = vec![r(5), r(1), r(9)];
        v.sort();
        assert_eq!(v, vec![r(1), r(5), r(9)]);
    }
}
