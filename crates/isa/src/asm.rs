//! Text assembler and disassembler.
//!
//! The assembly dialect round-trips with [`program_to_asm`]: a program can
//! be dumped to text, inspected/edited, and re-assembled with
//! [`assemble`]. Example:
//!
//! ```text
//! .global table words 1, 2, 3, 4
//! .global out zeroed 16
//! .entry main 1
//!
//! .thread main
//! .frame_slots 1
//! .block pl
//!     load r3, 0
//! .block ex
//! loop:
//!     sub r3, r3, #1
//!     bne r3, #0, loop
//! .block ps
//!     ffree r1
//!     stop
//! .end
//! ```
//!
//! Comments start with `;` or `#` (hash-immediates are only recognised in
//! operand position). Branch targets may be label names or absolute
//! instruction indices (the disassembler emits indices).

use crate::builder::{ProgramBuilder, ThreadBuilder};
use crate::instr::{AluOp, BrCond, Instr, Src};
use crate::program::{CodeBlock, Program, ThreadId};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// Splits a leading `label:` prefix off a statement, if present.
fn split_label(line: &str) -> (Option<&str>, &str) {
    if let Some((head, rest)) = line.split_once(':') {
        let name = head.trim();
        let is_ident = !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if is_ident {
            return (Some(name), rest.trim());
        }
    }
    (None, line)
}

/// Strips comments and surrounding whitespace; returns `None` for blank
/// lines.
fn clean(line: &str) -> Option<&str> {
    let mut s = line;
    if let Some(i) = s.find(';') {
        s = &s[..i];
    }
    // A '#' starts a comment only at the beginning of the line, otherwise it
    // introduces an immediate operand.
    let t = s.trim();
    if t.starts_with('#') {
        return None;
    }
    if t.is_empty() {
        None
    } else {
        Some(t)
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let Some(num) = t.strip_prefix('r') else {
        return err(line, format!("expected register, found {t:?}"));
    };
    let idx: u8 = num.parse().map_err(|_| AsmError {
        line,
        msg: format!("bad register {t:?}"),
    })?;
    Reg::try_new(idx).ok_or(AsmError {
        line,
        msg: format!("register {t:?} out of range"),
    })
}

fn parse_i64(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim().trim_start_matches('#');
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = t.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        t.parse().ok()
    };
    v.ok_or(AsmError {
        line,
        msg: format!("bad integer {tok:?}"),
    })
}

fn parse_src(tok: &str, line: usize) -> Result<Src, AsmError> {
    let t = tok.trim();
    if t.starts_with('r') && t[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(Src::Reg(parse_reg(t, line)?))
    } else {
        let v = parse_i64(t, line)?;
        i32::try_from(v).map(Src::Imm).map_err(|_| AsmError {
            line,
            msg: format!("immediate {v} does not fit in 32 bits"),
        })
    }
}

/// Parses `off(rN)`.
fn parse_memop(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let t = tok.trim();
    let (off_s, rest) = t.split_once('(').ok_or_else(|| AsmError {
        line,
        msg: format!("expected off(reg), found {t:?}"),
    })?;
    let reg_s = rest.strip_suffix(')').ok_or_else(|| AsmError {
        line,
        msg: format!("missing ')' in {t:?}"),
    })?;
    let off = if off_s.trim().is_empty() {
        0
    } else {
        parse_i64(off_s, line)? as i32
    };
    Ok((off, parse_reg(reg_s, line)?))
}

fn parse_tag(tok: &str, line: usize) -> Result<u8, AsmError> {
    let t = tok.trim();
    let Some(num) = t.strip_prefix("tag") else {
        return err(line, format!("expected tagN, found {t:?}"));
    };
    num.parse().map_err(|_| AsmError {
        line,
        msg: format!("bad tag {t:?}"),
    })
}

fn parse_kv<'a>(tok: &'a str, key: &str, line: usize) -> Result<&'a str, AsmError> {
    let t = tok.trim();
    t.strip_prefix(key)
        .and_then(|r| r.trim_start().strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| AsmError {
            line,
            msg: format!("expected {key}=..., found {t:?}"),
        })
}

/// Assembles a program from source text.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: thread names (for forward FALLOC references) and entry.
    let mut pb = ProgramBuilder::new();
    let mut thread_ids: HashMap<String, ThreadId> = HashMap::new();
    for raw in source.lines() {
        let Some(line) = clean(raw) else { continue };
        if let Some(rest) = line.strip_prefix(".thread") {
            let name = rest.trim();
            if name.is_empty() {
                continue;
            }
            if !thread_ids.contains_key(name) {
                let id = pb.declare(name.to_string());
                thread_ids.insert(name.to_string(), id);
            }
        }
    }

    let mut entry: Option<(String, u16, usize)> = None;
    let mut current: Option<ThreadAsm> = None;

    struct ThreadAsm {
        id: ThreadId,
        tb: ThreadBuilder,
        labels: HashMap<String, crate::builder::Label>,
    }

    impl ThreadAsm {
        fn label(&mut self, name: &str) -> crate::builder::Label {
            if let Some(&l) = self.labels.get(name) {
                return l;
            }
            let l = self.tb.new_label();
            self.labels.insert(name.to_string(), l);
            l
        }
    }

    // Pre-scan label definitions per thread so unknown label names give a
    // proper error instead of a builder panic.
    let mut thread_labels: HashMap<String, Vec<String>> = HashMap::new();
    {
        let mut cur: Option<String> = None;
        for raw in source.lines() {
            let Some(line) = clean(raw) else { continue };
            if let Some(rest) = line.strip_prefix(".thread") {
                cur = Some(rest.trim().to_string());
            } else if line == ".end" {
                cur = None;
            } else if let (Some(name), _) = split_label(line) {
                if let Some(t) = &cur {
                    thread_labels
                        .entry(t.clone())
                        .or_default()
                        .push(name.to_string());
                }
            }
        }
    }

    let mut current_name = String::new();

    for (lineno0, raw) in source.lines().enumerate() {
        let lineno = lineno0 + 1;
        let Some(line) = clean(raw) else { continue };

        // Directives.
        if let Some(rest) = line.strip_prefix(".global") {
            let usage = "usage: .global NAME [@ADDR] words|zeroed|bytes ...";
            let rest = rest.trim();
            let Some((name, rest)) = rest.split_once(char::is_whitespace) else {
                return err(lineno, usage);
            };
            let mut rest = rest.trim_start();
            // Optional explicit address: `.global tbl @0x100000 words ...`
            // (the disassembler always emits one so layouts round-trip).
            let mut addr = None;
            if let Some(stripped) = rest.strip_prefix('@') {
                let (tok, tail) =
                    stripped
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| AsmError {
                            line: lineno,
                            msg: usage.into(),
                        })?;
                addr = Some(parse_i64(tok, lineno)? as u64);
                rest = tail.trim_start();
            }
            let (kind, payload) = rest
                .split_once(char::is_whitespace)
                .map(|(k, p)| (k, p.trim_start()))
                .unwrap_or((rest, ""));
            let data: Vec<u8> = match kind {
                "words" => {
                    let words: Result<Vec<i32>, _> = payload
                        .split(',')
                        .filter(|s| !s.trim().is_empty())
                        .map(|s| parse_i64(s, lineno).map(|v| v as i32))
                        .collect();
                    words?.iter().flat_map(|w| w.to_le_bytes()).collect()
                }
                "zeroed" => {
                    let n = parse_i64(payload, lineno)? as usize;
                    vec![0; n]
                }
                "bytes" => {
                    let bytes: Result<Vec<u8>, _> = payload
                        .split_whitespace()
                        .map(|s| {
                            u8::from_str_radix(s, 16).map_err(|_| AsmError {
                                line: lineno,
                                msg: format!("bad hex byte {s:?}"),
                            })
                        })
                        .collect();
                    bytes?
                }
                other => return err(lineno, format!("unknown global kind {other:?}")),
            };
            match addr {
                Some(a) => {
                    pb.global_bytes_at(name, a, data);
                }
                None => {
                    pb.global_bytes(name, data);
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(".entry") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(args)) = (it.next(), it.next()) else {
                return err(lineno, "usage: .entry NAME NARGS");
            };
            entry = Some((name.to_string(), parse_i64(args, lineno)? as u16, lineno));
            continue;
        }
        if let Some(rest) = line.strip_prefix(".thread") {
            if current.is_some() {
                return err(lineno, "nested .thread (missing .end?)");
            }
            let name = rest.trim().to_string();
            let id = thread_ids[&name];
            current = Some(ThreadAsm {
                id,
                tb: ThreadBuilder::new(name.clone()),
                labels: HashMap::new(),
            });
            current_name = name;
            continue;
        }
        if line == ".end" {
            let Some(t) = current.take() else {
                return err(lineno, ".end without .thread");
            };
            pb.define(t.id, t.tb);
            continue;
        }

        let Some(t) = current.as_mut() else {
            return err(lineno, format!("statement outside .thread: {line:?}"));
        };

        if let Some(rest) = line.strip_prefix(".frame_slots") {
            t.tb.frame_slots(parse_i64(rest, lineno)? as u16);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".prefetch") {
            t.tb.prefetch_bytes(parse_i64(rest, lineno)? as u32);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".block") {
            match rest.trim() {
                "pf" => t.tb.begin_pf(),
                "pl" => t.tb.begin_pl(),
                "ex" => t.tb.begin_ex(),
                "ps" => t.tb.begin_ps(),
                other => return err(lineno, format!("unknown block {other:?}")),
            }
            continue;
        }
        let line = if let (Some(name), rest) = split_label(line) {
            let l = t.label(name);
            t.tb.bind(l);
            if rest.is_empty() {
                continue;
            }
            rest
        } else {
            line
        };

        // Instruction.
        let (mn, rest) = line
            .split_once(char::is_whitespace)
            .map(|(a, b)| (a, b.trim()))
            .unwrap_or((line, ""));
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(
                    lineno,
                    format!("{mn}: expected {n} operands, found {}", ops.len()),
                )
            }
        };

        // Branch target: label name or absolute index.
        let branch_to = |t: &mut ThreadAsm,
                         cond: Option<BrCond>,
                         ra: Reg,
                         rb: Src,
                         target: &str|
         -> Result<(), AsmError> {
            let tgt = target.trim();
            if tgt.chars().all(|c| c.is_ascii_digit()) {
                let idx: u32 = tgt.parse().unwrap();
                match cond {
                    Some(c) => t.tb.emit(Instr::Br {
                        cond: c,
                        ra,
                        rb,
                        target: idx,
                    }),
                    None => t.tb.emit(Instr::Jmp { target: idx }),
                };
                Ok(())
            } else {
                if !thread_labels
                    .get(&current_name)
                    .map(|v| v.iter().any(|l| l == tgt))
                    .unwrap_or(false)
                {
                    return err(lineno, format!("unknown label {tgt:?}"));
                }
                let l = t.label(tgt);
                match cond {
                    Some(c) => t.tb.br(c, ra, rb, l),
                    None => t.tb.jmp(l),
                }
                Ok(())
            }
        };

        if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mn) {
            want(3)?;
            let rd = parse_reg(ops[0], lineno)?;
            let ra = parse_reg(ops[1], lineno)?;
            let rb = parse_src(ops[2], lineno)?;
            t.tb.alu(*op, rd, ra, rb);
            continue;
        }
        if let Some(cond) = BrCond::ALL.iter().find(|c| c.mnemonic() == mn) {
            want(3)?;
            let ra = parse_reg(ops[0], lineno)?;
            let rb = parse_src(ops[1], lineno)?;
            branch_to(t, Some(*cond), ra, rb, ops[2])?;
            continue;
        }

        match mn {
            "li" => {
                want(2)?;
                let rd = parse_reg(ops[0], lineno)?;
                t.tb.li(rd, parse_i64(ops[1], lineno)?);
            }
            "mov" => {
                want(2)?;
                t.tb.mov(parse_reg(ops[0], lineno)?, parse_reg(ops[1], lineno)?);
            }
            "nop" => {
                want(0)?;
                t.tb.nop();
            }
            "jmp" => {
                want(1)?;
                branch_to(t, None, crate::reg::ZERO_REG, Src::Imm(0), ops[0])?;
            }
            "load" => {
                want(2)?;
                t.tb.load(
                    parse_reg(ops[0], lineno)?,
                    parse_i64(ops[1], lineno)? as u16,
                );
            }
            "store" => {
                want(3)?;
                t.tb.store(
                    parse_reg(ops[0], lineno)?,
                    parse_reg(ops[1], lineno)?,
                    parse_i64(ops[2], lineno)? as u16,
                );
            }
            "falloc" => {
                want(3)?;
                let rd = parse_reg(ops[0], lineno)?;
                let tgt = ops[1].trim();
                let id = if let Some(name) = tgt.strip_prefix('@') {
                    *thread_ids.get(name).ok_or_else(|| AsmError {
                        line: lineno,
                        msg: format!("unknown thread {name:?}"),
                    })?
                } else if let Some(num) = tgt.strip_prefix('t') {
                    ThreadId(num.parse().map_err(|_| AsmError {
                        line: lineno,
                        msg: format!("bad thread id {tgt:?}"),
                    })?)
                } else {
                    return err(lineno, format!("expected @name or tN, found {tgt:?}"));
                };
                t.tb.falloc(rd, id, parse_i64(ops[2], lineno)? as u16);
            }
            "ffree" => {
                want(1)?;
                t.tb.ffree(parse_reg(ops[0], lineno)?);
            }
            "stop" => {
                want(0)?;
                t.tb.stop();
            }
            "read" | "write" | "lsload" | "lsstore" => {
                want(2)?;
                let r1 = parse_reg(ops[0], lineno)?;
                let (off, ra) = parse_memop(ops[1], lineno)?;
                match mn {
                    "read" => t.tb.read(r1, ra, off),
                    "write" => t.tb.write(r1, ra, off),
                    "lsload" => t.tb.lsload(r1, ra, off),
                    _ => t.tb.lsstore(r1, ra, off),
                }
            }
            "dmaget" | "dmaput" => {
                want(4)?;
                let (ls_off, rls) = parse_memop(ops[0], lineno)?;
                let (mem_off, rmem) = parse_memop(ops[1], lineno)?;
                let bytes = parse_src(ops[2], lineno)?;
                let tag = parse_tag(ops[3], lineno)?;
                if mn == "dmaget" {
                    t.tb.dmaget(rls, ls_off, rmem, mem_off, bytes, tag);
                } else {
                    t.tb.dmaput(rls, ls_off, rmem, mem_off, bytes, tag);
                }
            }
            "dmagets" => {
                want(6)?;
                let (ls_off, rls) = parse_memop(ops[0], lineno)?;
                let (mem_off, rmem) = parse_memop(ops[1], lineno)?;
                let elem = parse_i64(parse_kv(ops[2], "elem", lineno)?, lineno)? as u16;
                let count = parse_src(parse_kv(ops[3], "count", lineno)?, lineno)?;
                let stride = parse_src(parse_kv(ops[4], "stride", lineno)?, lineno)?;
                let tag = parse_tag(ops[5], lineno)?;
                t.tb.dmagets(rls, ls_off, rmem, mem_off, elem, count, stride, tag);
            }
            "dmayield" => {
                want(0)?;
                t.tb.dmayield();
            }
            "dmawait" => {
                want(1)?;
                t.tb.dmawait(parse_tag(ops[0], lineno)?);
            }
            other => return err(lineno, format!("unknown mnemonic {other:?}")),
        }
    }

    if current.is_some() {
        return err(source.lines().count(), "missing .end at end of input");
    }
    let Some((entry_name, args, lineno)) = entry else {
        return err(source.lines().count().max(1), "missing .entry directive");
    };
    let Some(&id) = thread_ids.get(&entry_name) else {
        return err(lineno, format!("entry thread {entry_name:?} not defined"));
    };
    pb.set_entry(id, args);
    Ok(pb.build())
}

/// Disassembles a program into re-assemblable text.
pub fn program_to_asm(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    for g in &program.globals {
        if g.data.len() % 4 == 0 && !g.data.is_empty() {
            if g.data.iter().all(|&b| b == 0) {
                let _ = writeln!(
                    out,
                    ".global {} @{:#x} zeroed {}",
                    g.name,
                    g.addr,
                    g.data.len()
                );
            } else {
                let words: Vec<String> = g
                    .data
                    .chunks_exact(4)
                    .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]).to_string())
                    .collect();
                let _ = writeln!(
                    out,
                    ".global {} @{:#x} words {}",
                    g.name,
                    g.addr,
                    words.join(", ")
                );
            }
        } else {
            let bytes: Vec<String> = g.data.iter().map(|b| format!("{b:02x}")).collect();
            let _ = writeln!(
                out,
                ".global {} @{:#x} bytes {}",
                g.name,
                g.addr,
                bytes.join(" ")
            );
        }
    }
    let _ = writeln!(
        out,
        ".entry {} {}",
        program.thread(program.entry).name,
        program.entry_args
    );

    for t in &program.threads {
        let _ = writeln!(out, "\n.thread {}", t.name);
        let _ = writeln!(out, ".frame_slots {}", t.frame_slots);
        if t.prefetch_bytes > 0 {
            let _ = writeln!(out, ".prefetch {}", t.prefetch_bytes);
        }
        let mut last_block: Option<CodeBlock> = None;
        for (pc, instr) in t.code.iter().enumerate() {
            let block = t.block_of(pc as u32);
            if last_block != Some(block) {
                let _ = writeln!(out, ".block {}", block.name());
                last_block = Some(block);
            }
            // FALLOC: use @name so the text stays valid when thread order
            // changes.
            if let Instr::Falloc { rd, thread, sc } = instr {
                let _ = writeln!(
                    out,
                    "    falloc {rd}, @{}, {sc}",
                    program.thread(*thread).name
                );
            } else {
                let _ = writeln!(out, "    {instr}");
            }
        }
        let _ = writeln!(out, ".end");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    const HELLO: &str = r#"
; a tiny two-thread program
.global table words 10, 20, 30, 40
.global out zeroed 16
.entry main 1

.thread main
.frame_slots 1
.block pl
    load r3, 0
.block ex
    falloc r4, @worker, 2
.block ps
    store r3, r4, 0
    store r3, r4, 1
    ffree r1
    stop
.end

.thread worker
.frame_slots 2
.block pl
    load r3, 0
    load r4, 1
.block ex
loop:
    sub r3, r3, #1
    bne r3, #0, loop
.block ps
    ffree r1
    stop
.end
"#;

    #[test]
    fn assemble_basic_program() {
        let p = assemble(HELLO).expect("assembles");
        assert_eq!(p.threads.len(), 2);
        let (main_id, main) = p.thread_by_name("main").unwrap();
        assert_eq!(p.entry, main_id);
        assert_eq!(p.entry_args, 1);
        assert_eq!(main.frame_slots, 1);
        let (_, worker) = p.thread_by_name("worker").unwrap();
        // bne in worker branches back to `loop`.
        let br = worker
            .code
            .iter()
            .find(|i| matches!(i, Instr::Br { .. }))
            .unwrap();
        assert_eq!(br.target(), Some(2));
        assert_eq!(p.global("table").unwrap().size(), 16);
        assert!(crate::validate_program(&p).is_empty());
    }

    #[test]
    fn forward_falloc_reference_resolves() {
        // `main` FALLOCs `worker`, which appears later in the file.
        let p = assemble(HELLO).unwrap();
        let (worker_id, _) = p.thread_by_name("worker").unwrap();
        let (_, main) = p.thread_by_name("main").unwrap();
        let f = main
            .code
            .iter()
            .find_map(|i| match i {
                Instr::Falloc { thread, .. } => Some(*thread),
                _ => None,
            })
            .unwrap();
        assert_eq!(f, worker_id);
    }

    #[test]
    fn roundtrip_disassemble_reassemble() {
        let p1 = assemble(HELLO).unwrap();
        let text = program_to_asm(&p1);
        let p2 = assemble(&text).unwrap_or_else(|e| panic!("re-assembly failed: {e}\n{text}"));
        assert_eq!(p1.threads, p2.threads);
        assert_eq!(p1.entry, p2.entry);
        assert_eq!(p1.entry_args, p2.entry_args);
        assert_eq!(p1.globals, p2.globals);
    }

    #[test]
    fn dma_instructions_roundtrip() {
        let src = r#"
.entry main 0
.thread main
.frame_slots 0
.prefetch 256
.block pf
    dmaget 0(r2), 64(r5), #128, tag0
    dmagets 128(r2), 0(r6), elem=4, count=#16, stride=#64, tag1
    dmayield
.block ex
    lsload r7, 0(r2)
    dmaput 0(r2), 0(r5), #4, tag2
    dmawait tag2
.block ps
    ffree r1
    stop
.end
"#;
        let p = assemble(src).unwrap();
        let main = &p.threads[0];
        assert!(matches!(main.code[0], Instr::DmaGet { tag: 0, .. }));
        assert!(matches!(
            main.code[1],
            Instr::DmaGetStrided {
                elem_bytes: 4,
                tag: 1,
                ..
            }
        ));
        assert!(matches!(main.code[2], Instr::DmaYield));
        let text = program_to_asm(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.threads, p2.threads);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let src = ".entry main 0\n.thread main\n    frobnicate r1\n    stop\n.end\n";
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn unknown_label_reports_error() {
        let src = ".entry main 0\n.thread main\n    jmp nowhere\n    stop\n.end\n";
        let e = assemble(src).unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn missing_entry_is_error() {
        let src = ".thread main\n    stop\n.end\n";
        let e = assemble(src).unwrap_err();
        assert!(e.msg.contains(".entry"));
    }

    #[test]
    fn missing_end_is_error() {
        let src = ".entry main 0\n.thread main\n    stop\n";
        let e = assemble(src).unwrap_err();
        assert!(e.msg.contains(".end"));
    }

    #[test]
    fn statement_outside_thread_is_error() {
        let src = "    add r1, r2, r3\n";
        let e = assemble(src).unwrap_err();
        assert!(e.msg.contains("outside"));
    }

    #[test]
    fn inline_labels_share_a_line_with_instructions() {
        let src = "\
.entry main 0
.thread main
    li r3, 2
top: sub r3, r3, #1
    bne r3, #0, top
    stop
.end
";
        let p = assemble(src).unwrap();
        let br = p.threads[0]
            .code
            .iter()
            .find(|i| matches!(i, Instr::Br { .. }))
            .unwrap();
        assert_eq!(br.target(), Some(1));
    }

    #[test]
    fn numeric_branch_targets_accepted() {
        let src = ".entry main 0\n.thread main\n    nop\n    jmp 0\n    stop\n.end\n";
        let p = assemble(src).unwrap();
        assert_eq!(p.threads[0].code[1].target(), Some(0));
    }

    #[test]
    fn hex_immediates() {
        let src =
            ".entry main 0\n.thread main\n    li r3, 0x10\n    add r4, r3, #0x20\n    stop\n.end\n";
        let p = assemble(src).unwrap();
        assert!(matches!(p.threads[0].code[0], Instr::Li { imm: 16, .. }));
        assert!(matches!(
            p.threads[0].code[1],
            Instr::Alu {
                rb: Src::Imm(32),
                ..
            }
        ));
    }

    #[test]
    fn register_out_of_range_is_error() {
        let src = ".entry main 0\n.thread main\n    li r64, 0\n    stop\n.end\n";
        assert!(assemble(src).is_err());
    }

    #[test]
    fn byte_global_roundtrip() {
        let mut pb = ProgramBuilder::new();
        pb.global_bytes("odd", vec![1, 2, 3]); // not a multiple of 4
        let mut t = ThreadBuilder::new("main");
        t.stop();
        let id = pb.add_thread(t);
        pb.set_entry(id, 0);
        let p = pb.build();
        let text = program_to_asm(&p);
        assert!(text.contains("bytes 01 02 03"), "{text}");
        let p2 = assemble(&text).unwrap();
        assert_eq!(p.globals, p2.globals);
    }

    #[test]
    fn helpers_reject_garbage() {
        assert!(parse_reg("x3", 1).is_err());
        assert!(parse_reg("r999", 1).is_err());
        assert!(parse_memop("r3", 1).is_err());
        assert!(parse_memop("4(r3", 1).is_err());
        assert!(parse_tag("t3", 1).is_err());
        assert!(parse_i64("abc", 1).is_err());
        assert_eq!(parse_memop("(r3)", 1).unwrap(), (0, r(3)));
        assert_eq!(parse_memop("-8(r4)", 1).unwrap(), (-8, r(4)));
    }
}
