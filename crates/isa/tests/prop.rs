//! Property tests for the ISA crate: assembler round-trips, serde
//! round-trips, and structural invariants over arbitrary instructions.

use dta_isa::asm::{assemble, program_to_asm};
use dta_isa::{AluOp, BlockMap, BrCond, Instr, Program, Reg, Src, ThreadCode, ThreadId, NUM_REGS};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0..NUM_REGS as u8).prop_map(Reg::new)
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        arb_reg().prop_map(Src::Reg),
        any::<i32>().prop_map(Src::Imm),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_br_cond() -> impl Strategy<Value = BrCond> {
    prop::sample::select(BrCond::ALL.to_vec())
}

prop_compose! {
    fn arb_instr()(
        choice in 0..17usize,
        op in arb_alu_op(),
        cond in arb_br_cond(),
        rd in arb_reg(),
        ra in arb_reg(),
        rs in arb_reg(),
        rb in arb_src(),
        imm in any::<i64>(),
        off in -4096..4096i32,
        slot in 0..32u16,
        target in 0..512u32,
        thread in 0..2u32, // the generated programs have two threads
        sc in 0..16u16,
        tag in 0..32u8,
        bytes in 0..4096i32,
        count in 1..64i32,
        stride in prop::sample::select(vec![4i64, 8, 16, 64, 128, 1024]),
    ) -> Instr {
        match choice {
            0 => Instr::Alu { op, rd, ra, rb },
            1 => Instr::Li { rd, imm },
            2 => Instr::Mov { rd, ra },
            3 => Instr::Nop,
            4 => Instr::Br { cond, ra, rb, target },
            5 => Instr::Jmp { target },
            6 => Instr::Load { rd, slot },
            7 => Instr::Store { rs, rframe: ra, slot },
            8 => Instr::Falloc { rd, thread: ThreadId(thread), sc },
            9 => Instr::Ffree { rframe: ra },
            10 => Instr::Read { rd, ra, off },
            11 => Instr::Write { rs, ra, off },
            12 => Instr::LsLoad { rd, ra, off },
            13 => Instr::LsStore { rs, ra, off },
            14 => Instr::DmaGet { rls: ra, ls_off: off, rmem: rs, mem_off: off, bytes: Src::Imm(bytes), tag },
            15 => Instr::DmaGetStrided {
                rls: ra, ls_off: off, rmem: rs, mem_off: off,
                elem_bytes: 4, count: Src::Imm(count), stride: Src::Imm(stride as i32), tag,
            },
            _ => Instr::DmaPut { rls: ra, ls_off: off, rmem: rs, mem_off: off, bytes: Src::Imm(bytes), tag },
        }
    }
}

prop_compose! {
    fn arb_thread(name: &'static str)(
        mut code in prop::collection::vec(arb_instr(), 1..40),
        cuts in prop::collection::vec(0..40u32, 3),
        frame_slots in 0..32u16,
        prefetch in prop::sample::select(vec![0u32, 16, 256, 4096]),
    ) -> ThreadCode {
        code.push(Instr::Stop);
        let len = code.len() as u32;
        let mut cuts: Vec<u32> = cuts.into_iter().map(|c| c.min(len)).collect();
        cuts.sort_unstable();
        ThreadCode {
            name: name.to_string(),
            code,
            blocks: BlockMap { pf_end: cuts[0], pl_end: cuts[1], ex_end: cuts[2] },
            frame_slots,
            prefetch_bytes: prefetch,
        }
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    (arb_thread("alpha"), arb_thread("beta"), 0..4u16).prop_map(|(a, b, entry_args)| Program {
        threads: vec![a, b],
        entry: ThreadId(0),
        entry_args,
        globals: vec![
            dta_isa::GlobalDef::from_words("tbl", 0x10_0000, &[1, 2, 3, 4]),
            dta_isa::GlobalDef::zeroed("buf", 0x10_0020, 32),
        ],
    })
}

proptest! {
    /// Disassembling then re-assembling reproduces the program exactly
    /// (instructions, block maps, frame sizes, globals, entry).
    #[test]
    fn asm_round_trip(program in arb_program()) {
        let text = program_to_asm(&program);
        let back = assemble(&text)
            .unwrap_or_else(|e| panic!("re-assembly failed: {e}\n{text}"));
        prop_assert_eq!(&back.threads, &program.threads);
        prop_assert_eq!(back.entry, program.entry);
        prop_assert_eq!(back.entry_args, program.entry_args);
        prop_assert_eq!(&back.globals, &program.globals);
    }

    /// Programs survive a serde JSON round trip.
    #[test]
    fn serde_round_trip(program in arb_program()) {
        let json = serde_json::to_string(&program).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, program);
    }

    /// `defs`/`uses` always return in-range registers, and `defs` has at
    /// most one element (single-output ISA).
    #[test]
    fn defs_uses_invariants(instr in arb_instr()) {
        let defs = instr.defs();
        prop_assert!(defs.len() <= 1);
        for r in &defs {
            prop_assert!(r.index() < NUM_REGS);
        }
        for r in &instr.uses() {
            prop_assert!(r.index() < NUM_REGS);
        }
        // Display never panics and never emits newlines (one instruction
        // per line in listings).
        let s = instr.to_string();
        prop_assert!(!s.contains('\n'));
        prop_assert!(!s.is_empty());
    }

    /// `block_of` is consistent with `range`: every pc belongs to exactly
    /// the block whose range contains it.
    #[test]
    fn blockmap_partition(
        len in 1..200u32,
        cuts in prop::collection::vec(0..200u32, 3),
    ) {
        let mut cuts: Vec<u32> = cuts.into_iter().map(|c| c.min(len)).collect();
        cuts.sort_unstable();
        let map = BlockMap { pf_end: cuts[0], pl_end: cuts[1], ex_end: cuts[2] };
        prop_assert!(map.is_well_formed(len));
        for pc in 0..len {
            let b = map.block_of(pc);
            let r = map.range(b, len);
            prop_assert!(r.contains(&pc), "pc {} not in {:?} range {:?}", pc, b, r);
            // ...and in no other block's range.
            for other in dta_isa::CodeBlock::ALL {
                if other != b {
                    prop_assert!(!map.range(other, len).contains(&pc));
                }
            }
        }
    }

    /// ALU evaluation matches the obvious i64 reference for the
    /// non-trapping operations.
    #[test]
    fn alu_eval_reference(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(AluOp::Add.eval(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.eval(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Mul.eval(a, b), a.wrapping_mul(b));
        prop_assert_eq!(AluOp::And.eval(a, b), a & b);
        prop_assert_eq!(AluOp::Or.eval(a, b), a | b);
        prop_assert_eq!(AluOp::Xor.eval(a, b), a ^ b);
        prop_assert_eq!(AluOp::Min.eval(a, b), a.min(b));
        prop_assert_eq!(AluOp::Max.eval(a, b), a.max(b));
        prop_assert_eq!(AluOp::Slt.eval(a, b), (a < b) as i64);
        prop_assert_eq!(AluOp::Sltu.eval(a, b), ((a as u64) < (b as u64)) as i64);
        if b != 0 {
            prop_assert_eq!(AluOp::Div.eval(a, b), a.wrapping_div(b));
            prop_assert_eq!(AluOp::Rem.eval(a, b), a.wrapping_rem(b));
        }
        let sh = (b & 63) as u32;
        prop_assert_eq!(AluOp::Shl.eval(a, b), ((a as u64) << sh) as i64);
        prop_assert_eq!(AluOp::Shr.eval(a, b), ((a as u64) >> sh) as i64);
        prop_assert_eq!(AluOp::Sra.eval(a, b), a >> sh);
    }

    /// Binary program images round-trip exactly.
    #[test]
    fn binary_encode_round_trip(program in arb_program()) {
        let img = dta_isa::encode_program(&program);
        let back = dta_isa::decode_program(&img).unwrap();
        prop_assert_eq!(back, program);
    }

    /// Frame pointers round-trip through their register encoding, and no
    /// small integer ever decodes as one.
    #[test]
    fn frame_ptr_encoding(pe in any::<u16>(), index in any::<u32>(), junk in 0..0x1_0000_0000u64) {
        let fp = dta_isa::FramePtr::new(pe, index);
        prop_assert_eq!(dta_isa::FramePtr::decode(fp.encode()), Some(fp));
        prop_assert_eq!(dta_isa::FramePtr::decode(junk), None);
    }
}
