//! Randomised property tests for the ISA crate: assembler round-trips,
//! binary-image round-trips, and structural invariants over arbitrary
//! instructions.
//!
//! Deterministic seeded PRNG (no external property-testing dependency —
//! the repo builds hermetically); failures print the seed so a case can
//! be replayed by pinning `SEED`.

use dta_isa::asm::{assemble, program_to_asm};
use dta_isa::{AluOp, BlockMap, BrCond, Instr, Program, Reg, Src, ThreadCode, ThreadId, NUM_REGS};

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// xorshift64* — small, fast, deterministic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    /// Uniform in `[lo, hi)`.
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.below((hi - lo) as u64) as i64)
    }
    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.below(NUM_REGS as u64) as u8)
}

fn arb_src(rng: &mut Rng) -> Src {
    if rng.below(2) == 0 {
        Src::Reg(arb_reg(rng))
    } else {
        Src::Imm(rng.next() as i32)
    }
}

fn arb_instr(rng: &mut Rng) -> Instr {
    let op = rng.pick(&AluOp::ALL);
    let cond = rng.pick(&BrCond::ALL);
    let rd = arb_reg(rng);
    let ra = arb_reg(rng);
    let rs = arb_reg(rng);
    let rb = arb_src(rng);
    let imm = rng.next() as i64;
    let off = rng.range_i64(-4096, 4096) as i32;
    let slot = rng.below(32) as u16;
    let target = rng.below(512) as u32;
    let thread = rng.below(2) as u32; // the generated programs have two threads
    let sc = rng.below(16) as u16;
    let tag = rng.below(32) as u8;
    let bytes = rng.below(4096) as i32;
    let count = rng.range_i64(1, 64) as i32;
    let stride = rng.pick(&[4i32, 8, 16, 64, 128, 1024]);
    match rng.below(17) {
        0 => Instr::Alu { op, rd, ra, rb },
        1 => Instr::Li { rd, imm },
        2 => Instr::Mov { rd, ra },
        3 => Instr::Nop,
        4 => Instr::Br {
            cond,
            ra,
            rb,
            target,
        },
        5 => Instr::Jmp { target },
        6 => Instr::Load { rd, slot },
        7 => Instr::Store {
            rs,
            rframe: ra,
            slot,
        },
        8 => Instr::Falloc {
            rd,
            thread: ThreadId(thread),
            sc,
        },
        9 => Instr::Ffree { rframe: ra },
        10 => Instr::Read { rd, ra, off },
        11 => Instr::Write { rs, ra, off },
        12 => Instr::LsLoad { rd, ra, off },
        13 => Instr::LsStore { rs, ra, off },
        14 => Instr::DmaGet {
            rls: ra,
            ls_off: off,
            rmem: rs,
            mem_off: off,
            bytes: Src::Imm(bytes),
            tag,
        },
        15 => Instr::DmaGetStrided {
            rls: ra,
            ls_off: off,
            rmem: rs,
            mem_off: off,
            elem_bytes: 4,
            count: Src::Imm(count),
            stride: Src::Imm(stride),
            tag,
        },
        _ => Instr::DmaPut {
            rls: ra,
            ls_off: off,
            rmem: rs,
            mem_off: off,
            bytes: Src::Imm(bytes),
            tag,
        },
    }
}

fn arb_thread(rng: &mut Rng, name: &str) -> ThreadCode {
    let len = rng.range_i64(1, 40) as usize;
    let mut code: Vec<Instr> = (0..len).map(|_| arb_instr(rng)).collect();
    code.push(Instr::Stop);
    let total = code.len() as u32;
    let mut cuts: Vec<u32> = (0..3).map(|_| (rng.below(40) as u32).min(total)).collect();
    cuts.sort_unstable();
    ThreadCode {
        name: name.to_string(),
        code,
        blocks: BlockMap {
            pf_end: cuts[0],
            pl_end: cuts[1],
            ex_end: cuts[2],
        },
        frame_slots: rng.below(32) as u16,
        prefetch_bytes: rng.pick(&[0u32, 16, 256, 4096]),
        fallback: None,
    }
}

fn arb_program(rng: &mut Rng) -> Program {
    Program {
        threads: vec![arb_thread(rng, "alpha"), arb_thread(rng, "beta")],
        entry: ThreadId(0),
        entry_args: rng.below(4) as u16,
        globals: vec![
            dta_isa::GlobalDef::from_words("tbl", 0x10_0000, &[1, 2, 3, 4]),
            dta_isa::GlobalDef::zeroed("buf", 0x10_0020, 32),
        ],
    }
}

/// Disassembling then re-assembling reproduces the program exactly
/// (instructions, block maps, frame sizes, globals, entry).
#[test]
fn asm_round_trip() {
    let mut rng = Rng::new(SEED);
    for case in 0..128 {
        let program = arb_program(&mut rng);
        let text = program_to_asm(&program);
        let back = assemble(&text)
            .unwrap_or_else(|e| panic!("case {case}: re-assembly failed: {e}\n{text}"));
        assert_eq!(&back.threads, &program.threads, "case {case}");
        assert_eq!(back.entry, program.entry, "case {case}");
        assert_eq!(back.entry_args, program.entry_args, "case {case}");
        assert_eq!(&back.globals, &program.globals, "case {case}");
    }
}

/// `defs`/`uses` always return in-range registers, and `defs` has at
/// most one element (single-output ISA).
#[test]
fn defs_uses_invariants() {
    let mut rng = Rng::new(SEED ^ 1);
    for case in 0..512 {
        let instr = arb_instr(&mut rng);
        let defs = instr.defs();
        assert!(defs.len() <= 1, "case {case}: {instr}");
        for r in &defs {
            assert!(r.index() < NUM_REGS, "case {case}");
        }
        for r in &instr.uses() {
            assert!(r.index() < NUM_REGS, "case {case}");
        }
        // Display never panics and never emits newlines (one instruction
        // per line in listings).
        let s = instr.to_string();
        assert!(!s.contains('\n'), "case {case}");
        assert!(!s.is_empty(), "case {case}");
    }
}

/// `block_of` is consistent with `range`: every pc belongs to exactly
/// the block whose range contains it.
#[test]
fn blockmap_partition() {
    let mut rng = Rng::new(SEED ^ 2);
    for case in 0..64 {
        let len = rng.range_i64(1, 200) as u32;
        let mut cuts: Vec<u32> = (0..3).map(|_| (rng.below(200) as u32).min(len)).collect();
        cuts.sort_unstable();
        let map = BlockMap {
            pf_end: cuts[0],
            pl_end: cuts[1],
            ex_end: cuts[2],
        };
        assert!(map.is_well_formed(len), "case {case}");
        for pc in 0..len {
            let b = map.block_of(pc);
            let r = map.range(b, len);
            assert!(
                r.contains(&pc),
                "case {case}: pc {pc} not in {b:?} range {r:?}"
            );
            for other in dta_isa::CodeBlock::ALL {
                if other != b {
                    assert!(!map.range(other, len).contains(&pc), "case {case}: pc {pc}");
                }
            }
        }
    }
}

/// ALU evaluation matches the obvious i64 reference for the
/// non-trapping operations.
#[test]
fn alu_eval_reference() {
    let mut rng = Rng::new(SEED ^ 3);
    for _ in 0..512 {
        let a = rng.next() as i64;
        let b = rng.next() as i64;
        assert_eq!(AluOp::Add.eval(a, b), a.wrapping_add(b));
        assert_eq!(AluOp::Sub.eval(a, b), a.wrapping_sub(b));
        assert_eq!(AluOp::Mul.eval(a, b), a.wrapping_mul(b));
        assert_eq!(AluOp::And.eval(a, b), a & b);
        assert_eq!(AluOp::Or.eval(a, b), a | b);
        assert_eq!(AluOp::Xor.eval(a, b), a ^ b);
        assert_eq!(AluOp::Min.eval(a, b), a.min(b));
        assert_eq!(AluOp::Max.eval(a, b), a.max(b));
        assert_eq!(AluOp::Slt.eval(a, b), (a < b) as i64);
        assert_eq!(AluOp::Sltu.eval(a, b), ((a as u64) < (b as u64)) as i64);
        if b != 0 {
            assert_eq!(AluOp::Div.eval(a, b), a.wrapping_div(b));
            assert_eq!(AluOp::Rem.eval(a, b), a.wrapping_rem(b));
        }
        let sh = (b & 63) as u32;
        assert_eq!(AluOp::Shl.eval(a, b), ((a as u64) << sh) as i64);
        assert_eq!(AluOp::Shr.eval(a, b), ((a as u64) >> sh) as i64);
        assert_eq!(AluOp::Sra.eval(a, b), a >> sh);
    }
}

/// Binary program images round-trip exactly.
#[test]
fn binary_encode_round_trip() {
    let mut rng = Rng::new(SEED ^ 4);
    for case in 0..128 {
        let program = arb_program(&mut rng);
        let img = dta_isa::encode_program(&program);
        let back = dta_isa::decode_program(&img).unwrap();
        assert_eq!(back, program, "case {case}");
    }
}

/// Frame pointers round-trip through their register encoding, and no
/// small integer ever decodes as one.
#[test]
fn frame_ptr_encoding() {
    let mut rng = Rng::new(SEED ^ 5);
    for _ in 0..512 {
        let pe = rng.next() as u16;
        let index = rng.next() as u32;
        let junk = rng.below(0x1_0000_0000);
        let fp = dta_isa::FramePtr::new(pe, index);
        assert_eq!(dta_isa::FramePtr::decode(fp.encode()), Some(fp));
        assert_eq!(dta_isa::FramePtr::decode(junk), None);
    }
}
