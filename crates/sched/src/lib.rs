//! # dta-sched — the DTA distributed hardware scheduler
//!
//! DTA's defining feature is a fully distributed, hardware thread
//! scheduler (paper §2): every processing element has a **Local Scheduler
//! Element** ([`Lse`]) that manages its frames and ready threads, and every
//! node has a **Distributed Scheduler Element** ([`Dse`]) that load-balances
//! `FALLOC` requests across the node's PEs (and forwards them to other
//! nodes when local resources are exhausted). Scheduler elements
//! communicate by [`Message`]s — FALLOC-Request/Response, FFREE, and
//! remote-frame stores.
//!
//! The crate also defines the per-thread-instance bookkeeping
//! ([`Instance`], [`ThreadState`]) including the two states the paper's
//! prefetch mechanism adds to the lifecycle (Fig. 4): *Program DMA* (the
//! PF block occupies the pipeline) and *Wait for DMA* (the instance is off
//! the pipeline while its transfers are in flight — this is what makes
//! execution non-blocking).
//!
//! Everything here is purely functional logic plus latency constants; the
//! cycle-level orchestration (message delivery times, pipeline
//! interleaving) lives in `dta-core`.

pub mod dse;
pub mod instance;
pub mod lse;
pub mod message;

pub use dse::{Dse, DseParams, PendingFalloc};
pub use instance::{Instance, InstanceId, ThreadState};
pub use lse::{Adopted, CrashReport, Evacuee, Lse, LseParams, LseStats, StoreDelivery};
pub use message::{Dest, Envelope, Message, MsgSeq, Stamped};
