//! The Local Scheduler Element (LSE).
//!
//! One LSE per processing element (paper §2): it "manages local frames and
//! forwards requests for resources to a DSE". Concretely it owns:
//!
//! * the PE's **frame table** and free list (physical capacity is a
//!   hardware parameter; the *virtual frame pointers* option the paper
//!   mentions in §4.3 lifts the capacity limit and is implemented here as
//!   [`LseParams::virtual_frames`]);
//! * the **prefetch-buffer pool** — one local-store region per concurrent
//!   prefetching instance;
//! * the PE's **ready queue** of instances whose SC reached zero (or whose
//!   DMA completed);
//! * all live [`Instance`]s assigned to this PE.
//!
//! The LSE is a serially-occupied piece of hardware: the core simulator
//! charges [`LseParams::op_latency`] per operation through
//! [`Lse::reserve_op`], which is how bitcnt's fork storms turn into the
//! "LSE stalls" of the paper's Figure 5.

use crate::instance::{Instance, InstanceId, ThreadState};
use dta_isa::{FramePtr, ThreadId};
use dta_mem::ResourcePool;
use std::collections::{HashMap, VecDeque};

/// LSE configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LseParams {
    /// Physical frames per PE.
    pub frame_capacity: u32,
    /// Bytes of local store reserved per prefetch buffer.
    pub pf_buf_bytes: u32,
    /// Number of prefetch buffers in the pool (bounded by the local-store
    /// space left after code and frames; allocations for prefetching
    /// threads park when the pool is dry).
    pub pf_pool_size: u32,
    /// Local-store base address of the prefetch-buffer region.
    pub pf_region_base: u32,
    /// LSE processing time per operation, cycles.
    pub op_latency: u64,
    /// Enable virtual frame pointers: FALLOC never fails for lack of
    /// physical frames (paper §4.3's proposed fix for LSE stalls).
    pub virtual_frames: bool,
    /// Park allocations that arrive with no free physical frame instead
    /// of panicking. Without failover the DSE's capacity mirror is exact
    /// and an over-commit is a scheduler bug (the assert tripwire stays);
    /// with DSE failover a successor arbitrates on *approximate* fostered
    /// mirrors, so a bounded over-grant is legal and must queue here until
    /// a frame frees up.
    pub park_on_full: bool,
}

impl Default for LseParams {
    fn default() -> Self {
        LseParams {
            frame_capacity: 64,
            pf_buf_bytes: 8192,
            pf_pool_size: 16,
            pf_region_base: 0,
            op_latency: 2,
            virtual_frames: false,
            park_on_full: false,
        }
    }
}

/// LSE activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LseStats {
    /// Frames granted.
    pub allocs: u64,
    /// Frame stores applied.
    pub stores: u64,
    /// Frames released.
    pub frees: u64,
    /// Instances that reached `STOP`.
    pub stops: u64,
    /// High-water mark of live instances.
    pub max_live_instances: usize,
    /// High-water mark of the ready queue.
    pub max_ready_queue: usize,
    /// High-water mark of allocations parked waiting for a prefetch
    /// buffer.
    pub max_pending_allocs: usize,
    /// Scheduled LSE crashes that fired here.
    pub crashes: u64,
    /// Cold restarts after a crash.
    pub restarts: u64,
    /// Pre-start frames evacuated to a peer at a crash.
    pub evacuated: u64,
    /// Evacuated (or replayed) instances installed *here* by adoption.
    pub readmitted: u64,
    /// Started instances destroyed by a crash before completing.
    pub killed: u64,
    /// Unrecoverable work: tainted kills, evacuees with no live peer,
    /// adoptions addressed to a dead peer. Any non-zero total turns a
    /// quiescent run into a typed error instead of a silently wrong
    /// completion.
    pub lost: u64,
}

/// One not-yet-started instance re-created at the evacuation peer from
/// its frame snapshot after an LSE crash (or a started-but-effect-free
/// instance replayed from its inputs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evacuee {
    /// The frame index at the crashed LSE (producers keep addressing it;
    /// the crashed LSE forwards their stores by this key).
    pub index: u32,
    /// Static thread of the instance.
    pub thread: ThreadId,
    /// Remaining synchronisation count (0 for a replayed snapshot).
    pub sc: u16,
    /// Frame slot count of the thread.
    pub slots: u16,
    /// Whether the thread declared a prefetch buffer.
    pub needs_pf: bool,
    /// Non-zero slot values to replay (zero slots need no replay: peer
    /// frames start zeroed).
    pub values: Vec<(u16, i64)>,
}

/// Everything the core must act on after [`Lse::crash`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashReport {
    /// Instances to re-admit at the evacuation peer (empty when the
    /// schedule elected no peer — those count as lost instead).
    pub evacuees: Vec<Evacuee>,
    /// Parked allocations that were never granted a frame, to replay as
    /// fresh `FallocRequest`s through the arbiter DSE (PR 3's re-homing
    /// machinery): `(requester, for_inst, thread, sc, slots, needs_pf)`.
    pub replay: Vec<(u16, InstanceId, ThreadId, u16, u16, bool)>,
    /// Pre-start frames evacuated (== `evacuees` entries with `sc` ≥ 0
    /// that were not started, for the obs event).
    pub evacuated: u64,
    /// Started instances destroyed before completing.
    pub killed: u64,
    /// Work that cannot be recovered (see [`LseStats::lost`]).
    pub lost: u64,
}

/// Outcome of delivering an `LseAdopt` to a live peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adopted {
    /// Installed as a live local instance.
    Installed(InstanceId),
    /// Parked until a frame (or prefetch buffer) frees up; installed by
    /// [`Lse::retry_adoptions`] out of a later `FFREE`.
    Parked,
}

/// Outcome of delivering a store (or `LseAdoptStore`) at an LSE that has
/// crashed at least once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreDelivery {
    /// Applied to a live local instance (`Some` if it became ready).
    Applied(Option<InstanceId>),
    /// The target frame was evacuated: the caller forwards the store to
    /// `peer` re-keyed as `(this PE, index)`; `freed` reports that the
    /// forward drained the evacuation entry and returned the frame to
    /// the local pool (the caller posts `FrameFreed`).
    Forward {
        /// The adopting peer.
        peer: u16,
        /// The local frame index (the adopt-store correlation key).
        index: u32,
        /// The entry drained and the frame rejoined the free pool.
        freed: bool,
    },
    /// Buffered until the matching adoption installs.
    Stashed,
    /// A stale store for an instance the crash destroyed; dropped.
    Dropped,
}

/// An allocation the LSE granted; the caller must send the
/// `FallocResponse` to `requester`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Granted {
    /// PE whose pipeline awaits the response.
    pub requester: u16,
    /// The instance whose `FALLOC` this grant answers.
    pub for_inst: InstanceId,
    /// The frame pointer to return.
    pub frame: FramePtr,
    /// The new instance.
    pub instance: InstanceId,
}

/// The per-PE Local Scheduler Element.
#[derive(Debug)]
pub struct Lse {
    pe: u16,
    params: LseParams,
    /// Frame table: index → owning instance.
    frames: Vec<Option<InstanceId>>,
    free_frames: Vec<u32>,
    /// Free prefetch-buffer indices (each maps to a fixed LS region).
    pf_free: Vec<u32>,
    /// Per-instance assigned prefetch buffer index (releases on FFREE).
    pf_assigned: HashMap<InstanceId, u32>,
    instances: HashMap<InstanceId, Instance>,
    ready: VecDeque<InstanceId>,
    /// Allocations granted a frame but waiting for a prefetch buffer
    /// (only possible with virtual frames).
    pending: VecDeque<(u16, InstanceId, ThreadId, u16, u16, bool)>,
    busy: ResourcePool,
    next_instance: u64,
    stats: LseStats,
    /// Dead while a scheduled LSE outage is in effect (crash delivered,
    /// restart not yet).
    dead: bool,
    /// Evacuated-frame forwarding: local frame index → (adopting peer,
    /// remaining producer stores). Entries drain as forwards arrive and
    /// survive a restart so late producers still reach the adopter.
    evac: HashMap<u32, (u16, u16)>,
    /// Adopted instances: (home PE, home frame index) → (local instance,
    /// local frame index). Kept across a later own-crash so forwarded
    /// stores can chain to the next adopter.
    adopted: HashMap<(u16, u32), (InstanceId, u32)>,
    /// Adoptions parked for a free frame or prefetch buffer:
    /// `(home, index, thread, sc, slots, needs_pf)`.
    adopt_pending: VecDeque<(u16, u32, ThreadId, u16, u16, bool)>,
    /// Adopt-stores that arrived before their adoption installed.
    adopt_stash: HashMap<(u16, u32), StashedStores>,
}

/// Stores stashed for a not-yet-installed adoption: `(slot, value, sync)`.
type StashedStores = Vec<(u16, i64, bool)>;

impl Lse {
    /// Creates the LSE of PE `pe`.
    pub fn new(pe: u16, params: LseParams) -> Self {
        Lse {
            pe,
            params,
            frames: vec![None; params.frame_capacity as usize],
            free_frames: (0..params.frame_capacity).rev().collect(),
            pf_free: (0..params.pf_pool_size).rev().collect(),
            pf_assigned: HashMap::new(),
            instances: HashMap::new(),
            ready: VecDeque::new(),
            pending: VecDeque::new(),
            busy: ResourcePool::new(1),
            next_instance: 0,
            stats: LseStats::default(),
            dead: false,
            evac: HashMap::new(),
            adopted: HashMap::new(),
            adopt_pending: VecDeque::new(),
            adopt_stash: HashMap::new(),
        }
    }

    /// The PE this LSE belongs to.
    #[inline]
    pub fn pe(&self) -> u16 {
        self.pe
    }

    /// Configuration.
    #[inline]
    pub fn params(&self) -> LseParams {
        self.params
    }

    /// Counters.
    #[inline]
    pub fn stats(&self) -> LseStats {
        self.stats
    }

    /// Number of free physical frames (what the DSE load-balances on).
    pub fn free_frames(&self) -> u32 {
        self.free_frames.len() as u32
    }

    /// Number of live instances.
    pub fn live_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of frames currently occupied (observability gauge).
    pub fn frames_in_use(&self) -> u32 {
        self.params.frame_capacity - self.free_frames.len() as u32
    }

    /// Number of live instances blocked in `WaitDma` (observability
    /// gauge).
    pub fn waiting_dma(&self) -> usize {
        self.instances
            .values()
            .filter(|i| i.state == ThreadState::WaitDma)
            .count()
    }

    /// Lifecycle snapshot of every live instance, sorted by id (the
    /// underlying map iterates in arbitrary order; deadlock reports must
    /// be deterministic).
    pub fn live_instance_states(&self) -> Vec<(InstanceId, ThreadState)> {
        let mut v: Vec<(InstanceId, ThreadState)> = self
            .instances
            .iter()
            .map(|(&id, inst)| (id, inst.state))
            .collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }

    /// Reserves the LSE engine for one operation starting at `now`;
    /// returns the cycle at which the operation completes. Used by the
    /// core to model LSE contention.
    pub fn reserve_op(&mut self, now: u64) -> u64 {
        self.busy.reserve(now, self.params.op_latency).end
    }

    fn fresh_instance_id(&mut self) -> InstanceId {
        let id = InstanceId(((self.pe as u64) << 48) | self.next_instance);
        self.next_instance += 1;
        id
    }

    /// Grants a frame for an instance of `thread` (the DSE has already
    /// picked this PE). `slots` is the frame size of the thread,
    /// `needs_pf` whether it declared a prefetch buffer.
    ///
    /// Returns `None` when the allocation had to be parked (no prefetch
    /// buffer available — only possible with virtual frames, where
    /// concurrency can exceed physical capacity); parked allocations are
    /// granted by [`Lse::ffree`] as buffers free up.
    #[allow(clippy::too_many_arguments)]
    pub fn alloc_frame(
        &mut self,
        requester: u16,
        for_inst: InstanceId,
        thread: ThreadId,
        sc: u16,
        slots: u16,
        needs_pf: bool,
    ) -> Option<Granted> {
        if needs_pf && self.pf_free.is_empty() {
            self.pending
                .push_back((requester, for_inst, thread, sc, slots, needs_pf));
            self.stats.max_pending_allocs = self.stats.max_pending_allocs.max(self.pending.len());
            return None;
        }
        let index = match self.free_frames.pop() {
            Some(i) => i,
            None if self.params.virtual_frames => {
                let i = self.frames.len() as u32;
                self.frames.push(None);
                i
            }
            None if self.params.park_on_full => {
                // Failover mode: the arbiter's fostered mirror may lag
                // reality; queue until FFREE returns a frame. The park
                // happens before any prefetch buffer is popped, so no
                // resource leaks.
                self.pending
                    .push_back((requester, for_inst, thread, sc, slots, needs_pf));
                self.stats.max_pending_allocs =
                    self.stats.max_pending_allocs.max(self.pending.len());
                return None;
            }
            None => panic!(
                "LSE {}: frame allocation beyond capacity without virtual frames \
                 (the DSE must not over-commit)",
                self.pe
            ),
        };
        let id = self.fresh_instance_id();
        let pf_buf_addr = if needs_pf {
            let buf = self.pf_free.pop().expect("checked above");
            self.pf_assigned.insert(id, buf);
            self.params.pf_region_base + buf * self.params.pf_buf_bytes
        } else {
            u32::MAX
        };
        let frame = FramePtr::new(self.pe, index);
        let inst = Instance::new(id, thread, frame, sc, slots, pf_buf_addr);
        let became_ready = inst.state == ThreadState::Ready;
        self.frames[index as usize] = Some(id);
        self.instances.insert(id, inst);
        self.stats.allocs += 1;
        self.stats.max_live_instances = self.stats.max_live_instances.max(self.instances.len());
        if became_ready {
            self.push_ready(id, 0);
        }
        Some(Granted {
            requester,
            for_inst,
            frame,
            instance: id,
        })
    }

    /// Applies a store to a local frame; returns the instance id if the
    /// store made it ready.
    #[track_caller]
    pub fn store(
        &mut self,
        now: u64,
        frame: FramePtr,
        slot: u16,
        value: i64,
    ) -> Option<InstanceId> {
        assert_eq!(frame.pe, self.pe, "store routed to the wrong LSE");
        let id = self.frames[frame.index as usize]
            .unwrap_or_else(|| panic!("store to unallocated frame {frame}"));
        self.stats.stores += 1;
        let inst = self.instances.get_mut(&id).expect("frame table consistent");
        if inst.store(slot, value) {
            self.push_ready(id, now);
            Some(id)
        } else {
            None
        }
    }

    /// Releases a frame (the `FFREE` instruction). Returns allocations
    /// that were parked on a prefetch buffer and can now be granted (the
    /// caller sends their responses).
    #[track_caller]
    pub fn ffree(&mut self, frame: FramePtr) -> Vec<Granted> {
        assert_eq!(frame.pe, self.pe, "ffree routed to the wrong LSE");
        let id = self.frames[frame.index as usize]
            .unwrap_or_else(|| panic!("ffree of unallocated frame {frame}"));
        self.frames[frame.index as usize] = None;
        self.free_frames.push(frame.index);
        if let Some(buf) = self.pf_assigned.remove(&id) {
            self.pf_free.push(buf);
        }
        self.stats.frees += 1;

        // Retry parked allocations now that a frame (and maybe a buffer)
        // freed up. Entries parked on a prefetch buffer must not be popped
        // while the pool is dry (they would immediately re-park behind any
        // frame-parked entries, reordering the queue).
        let mut granted = Vec::new();
        while !self.pending.is_empty() && !self.free_frames.is_empty() {
            let needs_pf = self.pending.front().expect("non-empty").5;
            if needs_pf && self.pf_free.is_empty() {
                break;
            }
            let (req, for_inst, thread, sc, slots, needs_pf) =
                self.pending.pop_front().expect("non-empty");
            if let Some(g) = self.alloc_frame(req, for_inst, thread, sc, slots, needs_pf) {
                granted.push(g);
            }
        }
        granted
    }

    /// Marks an instance stopped; removes it once its DMA has drained.
    pub fn stop(&mut self, id: InstanceId) {
        let inst = self
            .instances
            .get_mut(&id)
            .unwrap_or_else(|| panic!("stop of unknown instance {id}"));
        inst.state = ThreadState::Done;
        self.stats.stops += 1;
        if inst.outstanding_dma == 0 {
            self.instances.remove(&id);
        }
    }

    /// Records a DMA completion for `owner`; returns `true` if it made the
    /// instance ready.
    pub fn dma_done(&mut self, now: u64, owner: InstanceId, tag: u8) -> bool {
        let Some(inst) = self.instances.get_mut(&owner) else {
            panic!("DMA completion for unknown instance {owner}");
        };
        let ready = inst.dma_complete(tag);
        if inst.state == ThreadState::Done && inst.outstanding_dma == 0 {
            self.instances.remove(&owner);
            return false;
        }
        if ready {
            self.push_ready(owner, now);
        }
        ready
    }

    fn push_ready(&mut self, id: InstanceId, now: u64) {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.ready_at = now;
        }
        self.ready.push_back(id);
        self.stats.max_ready_queue = self.stats.max_ready_queue.max(self.ready.len());
    }

    /// Transitions an instance to Ready and enqueues it (used when a
    /// deferred FALLOC grant finally arrives for a parked instance).
    pub fn make_ready(&mut self, now: u64, id: InstanceId) {
        let inst = self.instance_mut(id);
        inst.state = ThreadState::Ready;
        self.push_ready(id, now);
    }

    /// Pops the next ready instance for the pipeline (FIFO).
    pub fn pop_ready(&mut self) -> Option<InstanceId> {
        self.ready.pop_front()
    }

    /// Number of instances currently queued ready.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Immutable access to an instance.
    #[track_caller]
    pub fn instance(&self, id: InstanceId) -> &Instance {
        self.instances
            .get(&id)
            .unwrap_or_else(|| panic!("unknown instance {id}"))
    }

    /// Mutable access to an instance.
    #[track_caller]
    pub fn instance_mut(&mut self, id: InstanceId) -> &mut Instance {
        self.instances
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown instance {id}"))
    }

    /// Does the instance still exist? (Stopped instances with drained DMA
    /// are removed.)
    pub fn has_instance(&self, id: InstanceId) -> bool {
        self.instances.contains_key(&id)
    }

    /// The instance currently owning a frame index, if any.
    pub fn frame_owner(&self, frame: FramePtr) -> Option<InstanceId> {
        assert_eq!(frame.pe, self.pe, "lookup routed to the wrong LSE");
        self.frames.get(frame.index as usize).copied().flatten()
    }

    /// Is the LSE currently dead (crashed, not yet restarted)?
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Has this LSE ever crashed? Gates the tolerant message paths: once
    /// a crash destroyed instances, stale traffic addressed to them must
    /// drop instead of tripping the consistency asserts.
    #[inline]
    pub fn ever_crashed(&self) -> bool {
        self.stats.crashes > 0
    }

    /// Work this LSE knows to be unrecovered: lost instances plus
    /// adoptions still parked (and stashed stores with no installed
    /// adoption). Non-zero at quiescence turns the run into a typed
    /// error.
    pub fn unrecovered_work(&self) -> u64 {
        self.stats.lost
            + self.adopt_pending.len() as u64
            + self
                .adopt_stash
                .values()
                .map(|v| v.len() as u64)
                .sum::<u64>()
    }

    /// The scheduled crash fires: classify and destroy every live
    /// instance, arm store-forwarding for the evacuees, and report what
    /// the core must re-admit or replay. `evac_to` is the planned
    /// adoption peer from the failover schedule (`None` = evacuees are
    /// lost).
    ///
    /// Classification (the taint rule): an instance that has not yet
    /// started (`pc == 0`, waiting for stores or ready) is *evacuated* —
    /// its frame snapshot re-creates it at the peer, and future producer
    /// stores forward. A started instance without external effects
    /// (`!tainted`: no remote store, FALLOC, memory write, or DMA-out
    /// yet) is *killed and replayed* the same way from its input frame —
    /// replay is sound because everything it did was local. A tainted
    /// instance is killed unrecoverably (replay would double its
    /// effects) and counted lost. Instances already at `STOP` merely
    /// lose their DMA-drain bookkeeping.
    pub fn crash(&mut self, evac_to: Option<u16>) -> CrashReport {
        self.dead = true;
        self.stats.crashes += 1;
        let mut report = CrashReport::default();
        for index in 0..self.frames.len() as u32 {
            let Some(id) = self.frames[index as usize] else {
                continue;
            };
            // A stopped instance whose DMA drained is already gone from
            // the table while its frame awaits FFREE: nothing to recover.
            let Some(inst) = self.instances.get(&id) else {
                continue;
            };
            let pre_start = inst.pc == 0
                && !inst.tainted
                && matches!(inst.state, ThreadState::WaitStores | ThreadState::Ready);
            let evacuee = |inst: &Instance| Evacuee {
                index,
                thread: inst.thread,
                sc: inst.sc,
                slots: inst.slots.len() as u16,
                needs_pf: inst.pf_buf_addr != u32::MAX,
                values: inst
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0)
                    .map(|(s, &v)| (s as u16, v))
                    .collect(),
            };
            if pre_start {
                self.stats.evacuated += 1;
                report.evacuated += 1;
                if let Some(peer) = evac_to {
                    if inst.sc > 0 {
                        self.evac.insert(index, (peer, inst.sc));
                    }
                    report.evacuees.push(evacuee(inst));
                } else {
                    self.stats.lost += 1;
                    report.lost += 1;
                }
            } else if inst.state == ThreadState::Done {
                // STOP already executed; only its DMA-drain bookkeeping
                // dies with the LSE.
            } else if !inst.tainted {
                // Started but effect-free: kill and replay from inputs.
                self.stats.killed += 1;
                report.killed += 1;
                if evac_to.is_some() {
                    report.evacuees.push(evacuee(inst));
                } else {
                    self.stats.lost += 1;
                    report.lost += 1;
                }
            } else {
                self.stats.killed += 1;
                report.killed += 1;
                self.stats.lost += 1;
                report.lost += 1;
            }
        }
        // Parked allocations never granted a frame replay as fresh
        // FALLOCs through the arbiter (PR 3's re-homing path).
        report.replay = self.pending.drain(..).collect();
        // Adoptions we never managed to install die with us.
        while let Some((home, index, ..)) = self.adopt_pending.pop_front() {
            self.adopt_stash.remove(&(home, index));
            self.stats.lost += 1;
            report.lost += 1;
        }
        self.instances.clear();
        self.ready.clear();
        self.pf_assigned.clear();
        self.free_frames.clear();
        for f in &mut self.frames {
            *f = None;
        }
        report
    }

    /// The scheduled restart fires: rejoin cold. Frames still draining
    /// evacuation forwards stay out of the pool until their last
    /// producer store has been forwarded (the `(pe, index)` address must
    /// stay unambiguous); everything else is fresh. Instance ids stay
    /// monotonic so stale DMA owner tokens can never collide.
    pub fn restart(&mut self) {
        self.dead = false;
        self.stats.restarts += 1;
        self.frames = vec![None; self.params.frame_capacity as usize];
        self.free_frames = (0..self.params.frame_capacity)
            .rev()
            .filter(|i| !self.evac.contains_key(i))
            .collect();
        self.pf_free = (0..self.params.pf_pool_size).rev().collect();
        self.pf_assigned.clear();
    }

    /// Re-admits one evacuated instance from a crashed peer. Parks when
    /// no frame (or prefetch buffer) is free right now.
    #[allow(clippy::too_many_arguments)]
    pub fn adopt(
        &mut self,
        now: u64,
        home: u16,
        index: u32,
        thread: ThreadId,
        sc: u16,
        slots: u16,
        needs_pf: bool,
    ) -> Adopted {
        match self.try_install_adoption(now, home, index, thread, sc, slots, needs_pf) {
            Some(id) => Adopted::Installed(id),
            None => {
                self.adopt_pending
                    .push_back((home, index, thread, sc, slots, needs_pf));
                Adopted::Parked
            }
        }
    }

    /// An adoption addressed to this LSE while it is dead (simultaneous
    /// crashes): the instance is unrecoverable.
    pub fn adopt_lost(&mut self, home: u16, index: u32) {
        self.adopt_stash.remove(&(home, index));
        self.stats.lost += 1;
    }

    /// Retries parked adoptions after a frame freed up; returns the
    /// installs as `(home, index, instance)` so the caller can emit
    /// events and correct the arbiter's capacity mirror.
    pub fn retry_adoptions(&mut self, now: u64) -> Vec<(u16, u32, InstanceId)> {
        let mut installed = Vec::new();
        while let Some(&(home, index, thread, sc, slots, needs_pf)) = self.adopt_pending.front() {
            match self.try_install_adoption(now, home, index, thread, sc, slots, needs_pf) {
                Some(id) => {
                    self.adopt_pending.pop_front();
                    installed.push((home, index, id));
                }
                None => break,
            }
        }
        installed
    }

    #[allow(clippy::too_many_arguments)]
    fn try_install_adoption(
        &mut self,
        now: u64,
        home: u16,
        index: u32,
        thread: ThreadId,
        sc: u16,
        slots: u16,
        needs_pf: bool,
    ) -> Option<InstanceId> {
        if needs_pf && self.pf_free.is_empty() {
            return None;
        }
        let frame_index = match self.free_frames.pop() {
            Some(i) => i,
            None if self.params.virtual_frames => {
                let i = self.frames.len() as u32;
                self.frames.push(None);
                i
            }
            None => return None,
        };
        let id = self.fresh_instance_id();
        let pf_buf_addr = if needs_pf {
            let buf = self.pf_free.pop().expect("checked above");
            self.pf_assigned.insert(id, buf);
            self.params.pf_region_base + buf * self.params.pf_buf_bytes
        } else {
            u32::MAX
        };
        let frame = FramePtr::new(self.pe, frame_index);
        let inst = Instance::new(id, thread, frame, sc, slots, pf_buf_addr);
        let became_ready = inst.state == ThreadState::Ready;
        self.frames[frame_index as usize] = Some(id);
        self.instances.insert(id, inst);
        self.stats.readmitted += 1;
        self.stats.max_live_instances = self.stats.max_live_instances.max(self.instances.len());
        self.adopted.insert((home, index), (id, frame_index));
        if became_ready {
            self.push_ready(id, now);
        }
        if let Some(entries) = self.adopt_stash.remove(&(home, index)) {
            for (slot, value, sync) in entries {
                self.apply_adopt_value(now, id, slot, value, sync);
            }
        }
        Some(id)
    }

    fn apply_adopt_value(
        &mut self,
        now: u64,
        id: InstanceId,
        slot: u16,
        value: i64,
        sync: bool,
    ) -> Option<InstanceId> {
        let inst = self.instances.get_mut(&id).expect("just installed");
        if sync {
            self.stats.stores += 1;
            if inst.store(slot, value) {
                self.push_ready(id, now);
                return Some(id);
            }
        } else {
            // Snapshot replay: the original store was already counted
            // (and already decremented the SC) at the crashed home.
            inst.slots[slot as usize] = value;
        }
        None
    }

    /// Delivers an `LseAdoptStore` addressed `(home, index)` to this
    /// (live) LSE.
    pub fn adopt_store(
        &mut self,
        now: u64,
        home: u16,
        index: u32,
        slot: u16,
        value: i64,
        sync: bool,
    ) -> StoreDelivery {
        if let Some(&(id, local_index)) = self.adopted.get(&(home, index)) {
            if self.instances.contains_key(&id) {
                let ready = self.apply_adopt_value(now, id, slot, value, sync);
                return StoreDelivery::Applied(ready);
            }
            // We adopted it, then crashed and re-evacuated it: chain the
            // forward to the next adopter, re-keyed to our frame index.
            if sync && self.evac.contains_key(&local_index) {
                let (peer, freed) = self.evac_forward(local_index).expect("checked");
                return StoreDelivery::Forward {
                    peer,
                    index: local_index,
                    freed,
                };
            }
            return StoreDelivery::Dropped;
        }
        if self.dead {
            return StoreDelivery::Dropped;
        }
        // The forward outran the (slower, lease-delayed) adoption — or
        // the adoption is parked. Buffer until it installs.
        self.adopt_stash
            .entry((home, index))
            .or_default()
            .push((slot, value, sync));
        StoreDelivery::Stashed
    }

    /// Delivers an ordinary producer store at an LSE that has crashed at
    /// least once: evacuated frames forward to their adopter, live
    /// frames apply normally, anything else is a stale store for a
    /// destroyed instance and drops.
    pub fn store_after_crash(
        &mut self,
        now: u64,
        frame: FramePtr,
        slot: u16,
        value: i64,
    ) -> StoreDelivery {
        assert_eq!(frame.pe, self.pe, "store routed to the wrong LSE");
        if self.evac.contains_key(&frame.index) {
            let (peer, freed) = self.evac_forward(frame.index).expect("checked");
            return StoreDelivery::Forward {
                peer,
                index: frame.index,
                freed,
            };
        }
        if self.dead {
            return StoreDelivery::Dropped;
        }
        match self.frames.get(frame.index as usize).copied().flatten() {
            Some(_) => StoreDelivery::Applied(self.store(now, frame, slot, value)),
            None => StoreDelivery::Dropped,
        }
    }

    /// Accounts one forwarded producer store against an evacuation
    /// entry; drains the entry at zero and returns the frame to the pool
    /// (the second tuple field) once the address can no longer receive
    /// forwarded traffic.
    fn evac_forward(&mut self, index: u32) -> Option<(u16, bool)> {
        let entry = self.evac.get_mut(&index)?;
        let peer = entry.0;
        entry.1 = entry.1.saturating_sub(1);
        if entry.1 > 0 {
            return Some((peer, false));
        }
        self.evac.remove(&index);
        if !self.dead
            && (index as usize) < self.frames.len()
            && self.frames[index as usize].is_none()
        {
            self.free_frames.push(index);
            return Some((peer, true));
        }
        Some((peer, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lse() -> Lse {
        Lse::new(
            0,
            LseParams {
                frame_capacity: 2,
                pf_buf_bytes: 1024,
                pf_pool_size: 2,
                pf_region_base: 0x100,
                op_latency: 2,
                virtual_frames: false,
                park_on_full: false,
            },
        )
    }

    #[test]
    fn alloc_store_ready_flow() {
        let mut l = lse();
        let g = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 2, 2, false)
            .unwrap();
        assert_eq!(g.frame.pe, 0);
        assert_eq!(l.free_frames(), 1);
        assert!(l.pop_ready().is_none());

        assert!(l.store(10, g.frame, 0, 5).is_none());
        let ready = l.store(11, g.frame, 1, 6);
        assert_eq!(ready, Some(g.instance));
        assert_eq!(l.pop_ready(), Some(g.instance));
        let inst = l.instance(g.instance);
        assert_eq!(inst.slot(0), 5);
        assert_eq!(inst.slot(1), 6);
        assert_eq!(inst.ready_at, 11);
    }

    #[test]
    fn sc_zero_instance_is_immediately_ready() {
        let mut l = lse();
        let g = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        assert_eq!(l.pop_ready(), Some(g.instance));
    }

    #[test]
    fn ffree_recycles_frame_and_pf_buffer() {
        let mut l = lse();
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, true)
            .unwrap();
        let a1 = l.instance(g1.instance).pf_buf_addr;
        assert_ne!(a1, u32::MAX);
        l.stop(g1.instance);
        assert!(l.ffree(g1.frame).is_empty());
        assert_eq!(l.free_frames(), 2);
        // The same frame index and buffer can be handed out again.
        let g2 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, true)
            .unwrap();
        assert_eq!(g2.frame.index, g1.frame.index);
        assert_eq!(l.instance(g2.instance).pf_buf_addr, a1);
        // ...but the instance id is fresh.
        assert_ne!(g2.instance, g1.instance);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn overcommit_without_vfp_panics() {
        let mut l = lse();
        l.alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false);
        l.alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false);
        l.alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false); // capacity 2
    }

    #[test]
    fn virtual_frames_grow_beyond_capacity() {
        let mut l = Lse::new(
            0,
            LseParams {
                frame_capacity: 1,
                virtual_frames: true,
                ..LseParams::default()
            },
        );
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let g2 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let g3 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let mut idx = vec![g1.frame.index, g2.frame.index, g3.frame.index];
        idx.dedup();
        assert_eq!(idx.len(), 3, "distinct virtual frames");
    }

    #[test]
    fn vfp_with_pf_exhaustion_parks_allocation() {
        let mut l = Lse::new(
            0,
            LseParams {
                frame_capacity: 1,
                pf_pool_size: 1,
                virtual_frames: true,
                ..LseParams::default()
            },
        );
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, true)
            .unwrap();
        // Only one pf buffer exists; second prefetching alloc parks.
        assert!(l
            .alloc_frame(7, InstanceId(900), ThreadId(1), 1, 1, true)
            .is_none());
        // Freeing the first frame releases the buffer and grants the
        // parked request.
        l.stop(g1.instance);
        let granted = l.ffree(g1.frame);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].requester, 7);
    }

    #[test]
    fn park_on_full_queues_overgrants_until_ffree() {
        let mut l = Lse::new(
            0,
            LseParams {
                frame_capacity: 1,
                park_on_full: true,
                ..LseParams::default()
            },
        );
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        // Over-grant from an approximate post-failover mirror: parks.
        assert!(l
            .alloc_frame(3, InstanceId(901), ThreadId(1), 1, 1, false)
            .is_none());
        assert_eq!(l.stats().max_pending_allocs, 1);
        l.stop(g1.instance);
        let granted = l.ffree(g1.frame);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].requester, 3);
        assert_eq!(granted[0].for_inst, InstanceId(901));
    }

    #[test]
    fn stop_with_outstanding_dma_defers_removal() {
        let mut l = lse();
        let g = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        l.instance_mut(g.instance).dma_issued(2);
        l.stop(g.instance);
        assert!(l.has_instance(g.instance));
        assert!(!l.dma_done(0, g.instance, 2));
        assert!(!l.has_instance(g.instance));
    }

    #[test]
    fn dma_done_readies_waiting_instance() {
        let mut l = lse();
        let g = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        assert_eq!(l.pop_ready(), Some(g.instance)); // drain initial ready
        let inst = l.instance_mut(g.instance);
        inst.dma_issued(0);
        inst.state = ThreadState::WaitDma;
        assert!(l.dma_done(42, g.instance, 0));
        assert_eq!(l.pop_ready(), Some(g.instance));
        assert_eq!(l.instance(g.instance).ready_at, 42);
    }

    #[test]
    fn reserve_op_serialises_lse_work() {
        let mut l = lse();
        let a = l.reserve_op(0);
        let b = l.reserve_op(0);
        assert_eq!(a, 2);
        assert_eq!(b, 4); // queued behind the first op
    }

    #[test]
    #[should_panic(expected = "wrong LSE")]
    fn misrouted_store_panics() {
        let mut l = lse();
        l.store(0, FramePtr::new(1, 0), 0, 0);
    }

    #[test]
    #[should_panic(expected = "unallocated frame")]
    fn store_to_free_frame_panics() {
        let mut l = lse();
        l.store(0, FramePtr::new(0, 0), 0, 0);
    }

    fn big_lse(pe: u16, capacity: u32) -> Lse {
        Lse::new(
            pe,
            LseParams {
                frame_capacity: capacity,
                ..LseParams::default()
            },
        )
    }

    #[test]
    fn crash_classifies_pre_start_started_and_tainted() {
        let mut l = big_lse(0, 4);
        // A: pre-start, one of two producer stores arrived.
        let a = l
            .alloc_frame(0, InstanceId(900), ThreadId(1), 2, 2, false)
            .unwrap();
        l.store(1, a.frame, 0, 5);
        // B: started but effect-free (replayable from its inputs).
        let b = l
            .alloc_frame(0, InstanceId(900), ThreadId(2), 0, 1, false)
            .unwrap();
        let ib = l.instance_mut(b.instance);
        ib.pc = 3;
        ib.state = ThreadState::Running;
        // C: started and tainted (already stored remotely) — lost.
        let c = l
            .alloc_frame(0, InstanceId(900), ThreadId(3), 0, 0, false)
            .unwrap();
        let ic = l.instance_mut(c.instance);
        ic.pc = 1;
        ic.state = ThreadState::Running;
        ic.tainted = true;

        let r = l.crash(Some(1));
        assert!(l.is_dead());
        assert!(l.ever_crashed());
        assert_eq!((r.evacuated, r.killed, r.lost), (1, 2, 1));
        assert_eq!(r.evacuees.len(), 2, "A evacuated, B replayed, C lost");
        let ea = &r.evacuees[0];
        assert_eq!(
            (ea.index, ea.thread, ea.sc, ea.slots),
            (a.frame.index, ThreadId(1), 1, 2)
        );
        assert_eq!(ea.values, vec![(0, 5)], "only filled slots travel");
        let eb = &r.evacuees[1];
        assert_eq!(
            (eb.thread, eb.sc),
            (ThreadId(2), 0),
            "replay restarts from pc 0"
        );
        assert_eq!(l.unrecovered_work(), 1, "only C is lost work");
        // A's outstanding producer store must forward to the peer.
        assert_eq!(
            l.store_after_crash(9, a.frame, 1, 6),
            StoreDelivery::Forward {
                peer: 1,
                index: a.frame.index,
                freed: false
            }
        );
        // ...and once drained, further stores to the dead LSE drop.
        assert_eq!(
            l.store_after_crash(9, a.frame, 1, 6),
            StoreDelivery::Dropped
        );
    }

    #[test]
    fn crash_without_peer_loses_evacuees() {
        let mut l = big_lse(0, 4);
        let a = l
            .alloc_frame(0, InstanceId(900), ThreadId(1), 2, 2, false)
            .unwrap();
        let r = l.crash(None);
        assert!(r.evacuees.is_empty());
        assert_eq!((r.evacuated, r.lost), (1, 1));
        assert_eq!(
            l.store_after_crash(5, a.frame, 0, 1),
            StoreDelivery::Dropped
        );
    }

    #[test]
    fn restart_excludes_frames_still_draining_forwards() {
        let mut l = big_lse(0, 2);
        let a = l
            .alloc_frame(0, InstanceId(900), ThreadId(1), 2, 2, false)
            .unwrap();
        l.crash(Some(1));
        // First of two outstanding stores forwards while still dead.
        assert_eq!(
            l.store_after_crash(5, a.frame, 0, 1),
            StoreDelivery::Forward {
                peer: 1,
                index: a.frame.index,
                freed: false
            }
        );
        l.restart();
        assert!(!l.is_dead());
        assert_eq!(
            l.free_frames(),
            1,
            "the draining frame's address must stay reserved"
        );
        // The last forward releases the frame back to the pool.
        assert_eq!(
            l.store_after_crash(9, a.frame, 1, 2),
            StoreDelivery::Forward {
                peer: 1,
                index: a.frame.index,
                freed: true
            }
        );
        assert_eq!(l.free_frames(), 2);
    }

    #[test]
    fn adoption_applies_stashed_stores_in_arrival_order() {
        let mut peer = big_lse(1, 2);
        // Forwards outrun the lease-delayed Adopt: buffer them.
        assert_eq!(
            peer.adopt_store(3, 0, 7, 1, 9, false),
            StoreDelivery::Stashed,
            "snapshot replay before the adoption installs"
        );
        assert_eq!(
            peer.adopt_store(4, 0, 7, 0, 7, true),
            StoreDelivery::Stashed
        );
        let Adopted::Installed(id) = peer.adopt(5, 0, 7, ThreadId(4), 2, 2, false) else {
            panic!("capacity available — must install");
        };
        let inst = peer.instance(id);
        assert_eq!(inst.sc, 1, "sync store decremented, raw snapshot did not");
        assert_eq!((inst.slot(0), inst.slot(1)), (7, 9));
        assert_eq!(peer.stats().readmitted, 1);
        // The last producer store arrives after install and readies it.
        assert_eq!(
            peer.adopt_store(6, 0, 7, 1, 10, true),
            StoreDelivery::Applied(Some(id))
        );
        assert_eq!(peer.pop_ready(), Some(id));
        assert_eq!(peer.unrecovered_work(), 0);
    }

    #[test]
    fn adoption_parks_on_full_and_retries_after_ffree() {
        let mut peer = big_lse(1, 1);
        let g = peer
            .alloc_frame(1, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        assert_eq!(peer.pop_ready(), Some(g.instance));
        assert_eq!(
            peer.adopt(2, 0, 3, ThreadId(4), 0, 0, false),
            Adopted::Parked
        );
        assert_eq!(
            peer.unrecovered_work(),
            1,
            "parked adoption is at-risk work"
        );
        assert!(peer.retry_adoptions(3).is_empty(), "still full");
        peer.stop(g.instance);
        peer.ffree(g.frame);
        let installed = peer.retry_adoptions(4);
        assert_eq!(installed.len(), 1);
        assert_eq!((installed[0].0, installed[0].1), (0, 3));
        assert_eq!(peer.unrecovered_work(), 0);
        assert_eq!(
            peer.pop_ready(),
            Some(installed[0].2),
            "sc 0 readies at once"
        );
    }

    #[test]
    fn chained_crash_re_forwards_adopted_stores() {
        let mut peer = big_lse(1, 2);
        let Adopted::Installed(_) = peer.adopt(2, 0, 5, ThreadId(4), 2, 2, false) else {
            panic!("must install");
        };
        // The adopter itself crashes; the adopted copy is pre-start so it
        // evacuates onward, and forwards addressed to the *original* home
        // key chain to the new peer re-keyed to this LSE's frame.
        let r = peer.crash(Some(2));
        assert_eq!(r.evacuated, 1);
        let local = r.evacuees[0].index;
        assert_eq!(
            peer.adopt_store(9, 0, 5, 0, 1, true),
            StoreDelivery::Forward {
                peer: 2,
                index: local,
                freed: false
            }
        );
    }

    #[test]
    fn adopt_at_dead_lse_is_lost_work() {
        let mut l = big_lse(0, 2);
        l.crash(Some(1));
        l.adopt_lost(2, 9);
        assert_eq!(l.stats().lost, 1);
        assert!(l.unrecovered_work() > 0);
    }

    #[test]
    fn stats_track_high_water_marks() {
        let mut l = lse();
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let _g2 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let s = l.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.max_live_instances, 2);
        assert_eq!(s.max_ready_queue, 2);
        l.stop(g1.instance);
        assert_eq!(l.stats().stops, 1);
    }
}
