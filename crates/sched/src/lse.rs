//! The Local Scheduler Element (LSE).
//!
//! One LSE per processing element (paper §2): it "manages local frames and
//! forwards requests for resources to a DSE". Concretely it owns:
//!
//! * the PE's **frame table** and free list (physical capacity is a
//!   hardware parameter; the *virtual frame pointers* option the paper
//!   mentions in §4.3 lifts the capacity limit and is implemented here as
//!   [`LseParams::virtual_frames`]);
//! * the **prefetch-buffer pool** — one local-store region per concurrent
//!   prefetching instance;
//! * the PE's **ready queue** of instances whose SC reached zero (or whose
//!   DMA completed);
//! * all live [`Instance`]s assigned to this PE.
//!
//! The LSE is a serially-occupied piece of hardware: the core simulator
//! charges [`LseParams::op_latency`] per operation through
//! [`Lse::reserve_op`], which is how bitcnt's fork storms turn into the
//! "LSE stalls" of the paper's Figure 5.

use crate::instance::{Instance, InstanceId, ThreadState};
use dta_isa::{FramePtr, ThreadId};
use dta_mem::ResourcePool;
use std::collections::{HashMap, VecDeque};

/// LSE configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LseParams {
    /// Physical frames per PE.
    pub frame_capacity: u32,
    /// Bytes of local store reserved per prefetch buffer.
    pub pf_buf_bytes: u32,
    /// Number of prefetch buffers in the pool (bounded by the local-store
    /// space left after code and frames; allocations for prefetching
    /// threads park when the pool is dry).
    pub pf_pool_size: u32,
    /// Local-store base address of the prefetch-buffer region.
    pub pf_region_base: u32,
    /// LSE processing time per operation, cycles.
    pub op_latency: u64,
    /// Enable virtual frame pointers: FALLOC never fails for lack of
    /// physical frames (paper §4.3's proposed fix for LSE stalls).
    pub virtual_frames: bool,
    /// Park allocations that arrive with no free physical frame instead
    /// of panicking. Without failover the DSE's capacity mirror is exact
    /// and an over-commit is a scheduler bug (the assert tripwire stays);
    /// with DSE failover a successor arbitrates on *approximate* fostered
    /// mirrors, so a bounded over-grant is legal and must queue here until
    /// a frame frees up.
    pub park_on_full: bool,
}

impl Default for LseParams {
    fn default() -> Self {
        LseParams {
            frame_capacity: 64,
            pf_buf_bytes: 8192,
            pf_pool_size: 16,
            pf_region_base: 0,
            op_latency: 2,
            virtual_frames: false,
            park_on_full: false,
        }
    }
}

/// LSE activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LseStats {
    /// Frames granted.
    pub allocs: u64,
    /// Frame stores applied.
    pub stores: u64,
    /// Frames released.
    pub frees: u64,
    /// Instances that reached `STOP`.
    pub stops: u64,
    /// High-water mark of live instances.
    pub max_live_instances: usize,
    /// High-water mark of the ready queue.
    pub max_ready_queue: usize,
    /// High-water mark of allocations parked waiting for a prefetch
    /// buffer.
    pub max_pending_allocs: usize,
}

/// An allocation the LSE granted; the caller must send the
/// `FallocResponse` to `requester`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Granted {
    /// PE whose pipeline awaits the response.
    pub requester: u16,
    /// The instance whose `FALLOC` this grant answers.
    pub for_inst: InstanceId,
    /// The frame pointer to return.
    pub frame: FramePtr,
    /// The new instance.
    pub instance: InstanceId,
}

/// The per-PE Local Scheduler Element.
#[derive(Debug)]
pub struct Lse {
    pe: u16,
    params: LseParams,
    /// Frame table: index → owning instance.
    frames: Vec<Option<InstanceId>>,
    free_frames: Vec<u32>,
    /// Free prefetch-buffer indices (each maps to a fixed LS region).
    pf_free: Vec<u32>,
    /// Per-instance assigned prefetch buffer index (releases on FFREE).
    pf_assigned: HashMap<InstanceId, u32>,
    instances: HashMap<InstanceId, Instance>,
    ready: VecDeque<InstanceId>,
    /// Allocations granted a frame but waiting for a prefetch buffer
    /// (only possible with virtual frames).
    pending: VecDeque<(u16, InstanceId, ThreadId, u16, u16, bool)>,
    busy: ResourcePool,
    next_instance: u64,
    stats: LseStats,
}

impl Lse {
    /// Creates the LSE of PE `pe`.
    pub fn new(pe: u16, params: LseParams) -> Self {
        Lse {
            pe,
            params,
            frames: vec![None; params.frame_capacity as usize],
            free_frames: (0..params.frame_capacity).rev().collect(),
            pf_free: (0..params.pf_pool_size).rev().collect(),
            pf_assigned: HashMap::new(),
            instances: HashMap::new(),
            ready: VecDeque::new(),
            pending: VecDeque::new(),
            busy: ResourcePool::new(1),
            next_instance: 0,
            stats: LseStats::default(),
        }
    }

    /// The PE this LSE belongs to.
    #[inline]
    pub fn pe(&self) -> u16 {
        self.pe
    }

    /// Configuration.
    #[inline]
    pub fn params(&self) -> LseParams {
        self.params
    }

    /// Counters.
    #[inline]
    pub fn stats(&self) -> LseStats {
        self.stats
    }

    /// Number of free physical frames (what the DSE load-balances on).
    pub fn free_frames(&self) -> u32 {
        self.free_frames.len() as u32
    }

    /// Number of live instances.
    pub fn live_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of frames currently occupied (observability gauge).
    pub fn frames_in_use(&self) -> u32 {
        self.params.frame_capacity - self.free_frames.len() as u32
    }

    /// Number of live instances blocked in `WaitDma` (observability
    /// gauge).
    pub fn waiting_dma(&self) -> usize {
        self.instances
            .values()
            .filter(|i| i.state == ThreadState::WaitDma)
            .count()
    }

    /// Lifecycle snapshot of every live instance, sorted by id (the
    /// underlying map iterates in arbitrary order; deadlock reports must
    /// be deterministic).
    pub fn live_instance_states(&self) -> Vec<(InstanceId, ThreadState)> {
        let mut v: Vec<(InstanceId, ThreadState)> = self
            .instances
            .iter()
            .map(|(&id, inst)| (id, inst.state))
            .collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }

    /// Reserves the LSE engine for one operation starting at `now`;
    /// returns the cycle at which the operation completes. Used by the
    /// core to model LSE contention.
    pub fn reserve_op(&mut self, now: u64) -> u64 {
        self.busy.reserve(now, self.params.op_latency).end
    }

    fn fresh_instance_id(&mut self) -> InstanceId {
        let id = InstanceId(((self.pe as u64) << 48) | self.next_instance);
        self.next_instance += 1;
        id
    }

    /// Grants a frame for an instance of `thread` (the DSE has already
    /// picked this PE). `slots` is the frame size of the thread,
    /// `needs_pf` whether it declared a prefetch buffer.
    ///
    /// Returns `None` when the allocation had to be parked (no prefetch
    /// buffer available — only possible with virtual frames, where
    /// concurrency can exceed physical capacity); parked allocations are
    /// granted by [`Lse::ffree`] as buffers free up.
    #[allow(clippy::too_many_arguments)]
    pub fn alloc_frame(
        &mut self,
        requester: u16,
        for_inst: InstanceId,
        thread: ThreadId,
        sc: u16,
        slots: u16,
        needs_pf: bool,
    ) -> Option<Granted> {
        if needs_pf && self.pf_free.is_empty() {
            self.pending
                .push_back((requester, for_inst, thread, sc, slots, needs_pf));
            self.stats.max_pending_allocs = self.stats.max_pending_allocs.max(self.pending.len());
            return None;
        }
        let index = match self.free_frames.pop() {
            Some(i) => i,
            None if self.params.virtual_frames => {
                let i = self.frames.len() as u32;
                self.frames.push(None);
                i
            }
            None if self.params.park_on_full => {
                // Failover mode: the arbiter's fostered mirror may lag
                // reality; queue until FFREE returns a frame. The park
                // happens before any prefetch buffer is popped, so no
                // resource leaks.
                self.pending
                    .push_back((requester, for_inst, thread, sc, slots, needs_pf));
                self.stats.max_pending_allocs =
                    self.stats.max_pending_allocs.max(self.pending.len());
                return None;
            }
            None => panic!(
                "LSE {}: frame allocation beyond capacity without virtual frames \
                 (the DSE must not over-commit)",
                self.pe
            ),
        };
        let id = self.fresh_instance_id();
        let pf_buf_addr = if needs_pf {
            let buf = self.pf_free.pop().expect("checked above");
            self.pf_assigned.insert(id, buf);
            self.params.pf_region_base + buf * self.params.pf_buf_bytes
        } else {
            u32::MAX
        };
        let frame = FramePtr::new(self.pe, index);
        let inst = Instance::new(id, thread, frame, sc, slots, pf_buf_addr);
        let became_ready = inst.state == ThreadState::Ready;
        self.frames[index as usize] = Some(id);
        self.instances.insert(id, inst);
        self.stats.allocs += 1;
        self.stats.max_live_instances = self.stats.max_live_instances.max(self.instances.len());
        if became_ready {
            self.push_ready(id, 0);
        }
        Some(Granted {
            requester,
            for_inst,
            frame,
            instance: id,
        })
    }

    /// Applies a store to a local frame; returns the instance id if the
    /// store made it ready.
    #[track_caller]
    pub fn store(
        &mut self,
        now: u64,
        frame: FramePtr,
        slot: u16,
        value: i64,
    ) -> Option<InstanceId> {
        assert_eq!(frame.pe, self.pe, "store routed to the wrong LSE");
        let id = self.frames[frame.index as usize]
            .unwrap_or_else(|| panic!("store to unallocated frame {frame}"));
        self.stats.stores += 1;
        let inst = self.instances.get_mut(&id).expect("frame table consistent");
        if inst.store(slot, value) {
            self.push_ready(id, now);
            Some(id)
        } else {
            None
        }
    }

    /// Releases a frame (the `FFREE` instruction). Returns allocations
    /// that were parked on a prefetch buffer and can now be granted (the
    /// caller sends their responses).
    #[track_caller]
    pub fn ffree(&mut self, frame: FramePtr) -> Vec<Granted> {
        assert_eq!(frame.pe, self.pe, "ffree routed to the wrong LSE");
        let id = self.frames[frame.index as usize]
            .unwrap_or_else(|| panic!("ffree of unallocated frame {frame}"));
        self.frames[frame.index as usize] = None;
        self.free_frames.push(frame.index);
        if let Some(buf) = self.pf_assigned.remove(&id) {
            self.pf_free.push(buf);
        }
        self.stats.frees += 1;

        // Retry parked allocations now that a frame (and maybe a buffer)
        // freed up. Entries parked on a prefetch buffer must not be popped
        // while the pool is dry (they would immediately re-park behind any
        // frame-parked entries, reordering the queue).
        let mut granted = Vec::new();
        while !self.pending.is_empty() && !self.free_frames.is_empty() {
            let needs_pf = self.pending.front().expect("non-empty").5;
            if needs_pf && self.pf_free.is_empty() {
                break;
            }
            let (req, for_inst, thread, sc, slots, needs_pf) =
                self.pending.pop_front().expect("non-empty");
            if let Some(g) = self.alloc_frame(req, for_inst, thread, sc, slots, needs_pf) {
                granted.push(g);
            }
        }
        granted
    }

    /// Marks an instance stopped; removes it once its DMA has drained.
    pub fn stop(&mut self, id: InstanceId) {
        let inst = self
            .instances
            .get_mut(&id)
            .unwrap_or_else(|| panic!("stop of unknown instance {id}"));
        inst.state = ThreadState::Done;
        self.stats.stops += 1;
        if inst.outstanding_dma == 0 {
            self.instances.remove(&id);
        }
    }

    /// Records a DMA completion for `owner`; returns `true` if it made the
    /// instance ready.
    pub fn dma_done(&mut self, now: u64, owner: InstanceId, tag: u8) -> bool {
        let Some(inst) = self.instances.get_mut(&owner) else {
            panic!("DMA completion for unknown instance {owner}");
        };
        let ready = inst.dma_complete(tag);
        if inst.state == ThreadState::Done && inst.outstanding_dma == 0 {
            self.instances.remove(&owner);
            return false;
        }
        if ready {
            self.push_ready(owner, now);
        }
        ready
    }

    fn push_ready(&mut self, id: InstanceId, now: u64) {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.ready_at = now;
        }
        self.ready.push_back(id);
        self.stats.max_ready_queue = self.stats.max_ready_queue.max(self.ready.len());
    }

    /// Transitions an instance to Ready and enqueues it (used when a
    /// deferred FALLOC grant finally arrives for a parked instance).
    pub fn make_ready(&mut self, now: u64, id: InstanceId) {
        let inst = self.instance_mut(id);
        inst.state = ThreadState::Ready;
        self.push_ready(id, now);
    }

    /// Pops the next ready instance for the pipeline (FIFO).
    pub fn pop_ready(&mut self) -> Option<InstanceId> {
        self.ready.pop_front()
    }

    /// Number of instances currently queued ready.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Immutable access to an instance.
    #[track_caller]
    pub fn instance(&self, id: InstanceId) -> &Instance {
        self.instances
            .get(&id)
            .unwrap_or_else(|| panic!("unknown instance {id}"))
    }

    /// Mutable access to an instance.
    #[track_caller]
    pub fn instance_mut(&mut self, id: InstanceId) -> &mut Instance {
        self.instances
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown instance {id}"))
    }

    /// Does the instance still exist? (Stopped instances with drained DMA
    /// are removed.)
    pub fn has_instance(&self, id: InstanceId) -> bool {
        self.instances.contains_key(&id)
    }

    /// The instance currently owning a frame index, if any.
    pub fn frame_owner(&self, frame: FramePtr) -> Option<InstanceId> {
        assert_eq!(frame.pe, self.pe, "lookup routed to the wrong LSE");
        self.frames.get(frame.index as usize).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lse() -> Lse {
        Lse::new(
            0,
            LseParams {
                frame_capacity: 2,
                pf_buf_bytes: 1024,
                pf_pool_size: 2,
                pf_region_base: 0x100,
                op_latency: 2,
                virtual_frames: false,
                park_on_full: false,
            },
        )
    }

    #[test]
    fn alloc_store_ready_flow() {
        let mut l = lse();
        let g = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 2, 2, false)
            .unwrap();
        assert_eq!(g.frame.pe, 0);
        assert_eq!(l.free_frames(), 1);
        assert!(l.pop_ready().is_none());

        assert!(l.store(10, g.frame, 0, 5).is_none());
        let ready = l.store(11, g.frame, 1, 6);
        assert_eq!(ready, Some(g.instance));
        assert_eq!(l.pop_ready(), Some(g.instance));
        let inst = l.instance(g.instance);
        assert_eq!(inst.slot(0), 5);
        assert_eq!(inst.slot(1), 6);
        assert_eq!(inst.ready_at, 11);
    }

    #[test]
    fn sc_zero_instance_is_immediately_ready() {
        let mut l = lse();
        let g = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        assert_eq!(l.pop_ready(), Some(g.instance));
    }

    #[test]
    fn ffree_recycles_frame_and_pf_buffer() {
        let mut l = lse();
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, true)
            .unwrap();
        let a1 = l.instance(g1.instance).pf_buf_addr;
        assert_ne!(a1, u32::MAX);
        l.stop(g1.instance);
        assert!(l.ffree(g1.frame).is_empty());
        assert_eq!(l.free_frames(), 2);
        // The same frame index and buffer can be handed out again.
        let g2 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, true)
            .unwrap();
        assert_eq!(g2.frame.index, g1.frame.index);
        assert_eq!(l.instance(g2.instance).pf_buf_addr, a1);
        // ...but the instance id is fresh.
        assert_ne!(g2.instance, g1.instance);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn overcommit_without_vfp_panics() {
        let mut l = lse();
        l.alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false);
        l.alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false);
        l.alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false); // capacity 2
    }

    #[test]
    fn virtual_frames_grow_beyond_capacity() {
        let mut l = Lse::new(
            0,
            LseParams {
                frame_capacity: 1,
                virtual_frames: true,
                ..LseParams::default()
            },
        );
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let g2 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let g3 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let mut idx = vec![g1.frame.index, g2.frame.index, g3.frame.index];
        idx.dedup();
        assert_eq!(idx.len(), 3, "distinct virtual frames");
    }

    #[test]
    fn vfp_with_pf_exhaustion_parks_allocation() {
        let mut l = Lse::new(
            0,
            LseParams {
                frame_capacity: 1,
                pf_pool_size: 1,
                virtual_frames: true,
                ..LseParams::default()
            },
        );
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, true)
            .unwrap();
        // Only one pf buffer exists; second prefetching alloc parks.
        assert!(l
            .alloc_frame(7, InstanceId(900), ThreadId(1), 1, 1, true)
            .is_none());
        // Freeing the first frame releases the buffer and grants the
        // parked request.
        l.stop(g1.instance);
        let granted = l.ffree(g1.frame);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].requester, 7);
    }

    #[test]
    fn park_on_full_queues_overgrants_until_ffree() {
        let mut l = Lse::new(
            0,
            LseParams {
                frame_capacity: 1,
                park_on_full: true,
                ..LseParams::default()
            },
        );
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        // Over-grant from an approximate post-failover mirror: parks.
        assert!(l
            .alloc_frame(3, InstanceId(901), ThreadId(1), 1, 1, false)
            .is_none());
        assert_eq!(l.stats().max_pending_allocs, 1);
        l.stop(g1.instance);
        let granted = l.ffree(g1.frame);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].requester, 3);
        assert_eq!(granted[0].for_inst, InstanceId(901));
    }

    #[test]
    fn stop_with_outstanding_dma_defers_removal() {
        let mut l = lse();
        let g = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        l.instance_mut(g.instance).dma_issued(2);
        l.stop(g.instance);
        assert!(l.has_instance(g.instance));
        assert!(!l.dma_done(0, g.instance, 2));
        assert!(!l.has_instance(g.instance));
    }

    #[test]
    fn dma_done_readies_waiting_instance() {
        let mut l = lse();
        let g = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        assert_eq!(l.pop_ready(), Some(g.instance)); // drain initial ready
        let inst = l.instance_mut(g.instance);
        inst.dma_issued(0);
        inst.state = ThreadState::WaitDma;
        assert!(l.dma_done(42, g.instance, 0));
        assert_eq!(l.pop_ready(), Some(g.instance));
        assert_eq!(l.instance(g.instance).ready_at, 42);
    }

    #[test]
    fn reserve_op_serialises_lse_work() {
        let mut l = lse();
        let a = l.reserve_op(0);
        let b = l.reserve_op(0);
        assert_eq!(a, 2);
        assert_eq!(b, 4); // queued behind the first op
    }

    #[test]
    #[should_panic(expected = "wrong LSE")]
    fn misrouted_store_panics() {
        let mut l = lse();
        l.store(0, FramePtr::new(1, 0), 0, 0);
    }

    #[test]
    #[should_panic(expected = "unallocated frame")]
    fn store_to_free_frame_panics() {
        let mut l = lse();
        l.store(0, FramePtr::new(0, 0), 0, 0);
    }

    #[test]
    fn stats_track_high_water_marks() {
        let mut l = lse();
        let g1 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let _g2 = l
            .alloc_frame(0, InstanceId(900), ThreadId(0), 0, 0, false)
            .unwrap();
        let s = l.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.max_live_instances, 2);
        assert_eq!(s.max_ready_queue, 2);
        l.stop(g1.instance);
        assert_eq!(l.stats().stops, 1);
    }
}
