//! The Distributed Scheduler Element (DSE).
//!
//! One DSE per node (paper §2): "it is responsible for distributing the
//! workload between processors in the node, and for forwarding it to other
//! nodes when internal resources are finished". The DSE keeps a mirror of
//! every local PE's free-frame count (updated by grants and by `FrameFreed`
//! notifications) and picks the least-loaded PE for each `FALLOC`.
//!
//! When no local PE has a free frame the request is either **forwarded**
//! to the next node's DSE (multi-node configurations) or **queued** until
//! a `FrameFreed` arrives — the queueing shows up at the requesting
//! pipeline as an LSE stall, exactly the bitcnt behaviour of Fig. 5.

use crate::instance::InstanceId;
use crate::message::Message;
use dta_isa::ThreadId;
use dta_mem::ResourcePool;
use std::cmp::Reverse;
use std::collections::VecDeque;

/// DSE configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DseParams {
    /// DSE processing time per operation, cycles.
    pub op_latency: u64,
    /// Virtual frame pointers: grant without regard to physical capacity.
    pub virtual_frames: bool,
}

impl Default for DseParams {
    fn default() -> Self {
        DseParams {
            op_latency: 4,
            virtual_frames: false,
        }
    }
}

/// A FALLOC that could not be served yet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PendingFalloc {
    /// PE whose pipeline is blocked.
    pub requester: u16,
    /// The requesting instance (correlation token).
    pub for_inst: InstanceId,
    /// Thread to instantiate.
    pub thread: ThreadId,
    /// Synchronisation count.
    pub sc: u16,
}

/// The DSE's decision for an incoming FALLOC request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FallocDecision {
    /// Send `AllocFrame` to this PE's LSE.
    Grant {
        /// Chosen PE (global index).
        pe: u16,
    },
    /// Forward the request to the next node's DSE.
    Forward,
    /// Parked locally until a frame frees up.
    Queued,
}

/// DSE activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Requests received.
    pub requests: u64,
    /// Requests granted locally.
    pub grants: u64,
    /// Requests forwarded to another node.
    pub forwards: u64,
    /// High-water mark of the pending queue.
    pub max_pending: usize,
    /// Requests denied by fault injection and parked for re-arbitration.
    pub denials: u64,
    /// Injected crashes of this DSE.
    pub crashes: u64,
    /// Crashes of this DSE whose arbitration moved to a live peer.
    pub failovers: u64,
    /// FALLOC requests re-homed away from this DSE while it was dead
    /// (orphans replayed at crash plus in-flight requests bounced).
    pub rehomed: u64,
    /// `DseRegister` resync messages this DSE applied.
    pub resyncs: u64,
}

/// The per-node Distributed Scheduler Element.
#[derive(Debug)]
pub struct Dse {
    node: u16,
    /// Global PE indices belonging to this node.
    pes: Vec<u16>,
    /// Mirror of per-PE free frame counts (indexed like `pes`).
    free_mirror: Vec<i64>,
    /// Capacity mirrors fostered from crashed peer nodes while this DSE
    /// acts as their successor arbiter: `(global PE, free frames)`,
    /// sorted by PE for deterministic iteration. Foster slots are only
    /// granted while strictly positive — the successor's view of a
    /// remote PE is approximate, and over-granting a foreign LSE would
    /// violate its capacity invariant.
    foster: Vec<(u16, i64)>,
    pending: VecDeque<PendingFalloc>,
    params: DseParams,
    total_nodes: u16,
    busy: ResourcePool,
    stats: DseStats,
    /// Cleared by an injected crash, set again by the planned restart.
    alive: bool,
    /// Crash/failover protocol armed (a `dse_crash` schedule exists).
    /// When false, a `FrameFreed` from a foreign PE is still a routing
    /// bug and panics.
    failover_enabled: bool,
    /// Global PE indices currently excluded from arbitration because
    /// their LSE is known dead (detected LSE crashes). Kept sorted; the
    /// core recomputes it purely from the failover schedule at every
    /// delivery point, so it is a function of time — never of runtime
    /// state.
    dead_pes: Vec<u16>,
}

impl Dse {
    /// Creates the DSE of `node`, managing `pes` (each starting with
    /// `frames_per_pe` free frames), in a system of `total_nodes` nodes.
    pub fn new(
        node: u16,
        pes: Vec<u16>,
        frames_per_pe: u32,
        total_nodes: u16,
        params: DseParams,
    ) -> Self {
        assert!(!pes.is_empty(), "a node needs at least one PE");
        let n = pes.len();
        Dse {
            node,
            pes,
            free_mirror: vec![frames_per_pe as i64; n],
            foster: Vec::new(),
            pending: VecDeque::new(),
            params,
            total_nodes,
            busy: ResourcePool::new(1),
            stats: DseStats::default(),
            alive: true,
            failover_enabled: false,
            dead_pes: Vec::new(),
        }
    }

    /// The node this DSE serves.
    #[inline]
    pub fn node(&self) -> u16 {
        self.node
    }

    /// Counters.
    #[inline]
    pub fn stats(&self) -> DseStats {
        self.stats
    }

    /// Number of requests parked.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Reserves the DSE engine for one operation starting at `now`;
    /// returns the completion cycle.
    pub fn reserve_op(&mut self, now: u64) -> u64 {
        self.busy.reserve(now, self.params.op_latency).end
    }

    /// Picks the least-loaded slot across own and fostered mirrors
    /// (most free frames; ties break to the lowest global PE index for
    /// determinism). Returns `(index, is_own)`. Identical to the pre-
    /// failover pick whenever `foster` is empty: own PE indices are
    /// ascending, so the `(free, Reverse(global_pe))` key orders exactly
    /// like the old `(free, Reverse(slot))`.
    fn pick_slot(&self) -> Option<(usize, bool)> {
        let mut best: Option<(i64, u16, bool, usize)> = None;
        for (i, &f) in self.free_mirror.iter().enumerate() {
            let pe = self.pes[i];
            if self.dead_pes.binary_search(&pe).is_ok() {
                continue;
            }
            if best.is_none_or(|(bf, bpe, _, _)| (f, Reverse(pe)) > (bf, Reverse(bpe))) {
                best = Some((f, pe, true, i));
            }
        }
        for (j, &(pe, f)) in self.foster.iter().enumerate() {
            // Foster slots never over-grant: virtual frames apply only
            // to a node's own PEs.
            if f <= 0 || self.dead_pes.binary_search(&pe).is_ok() {
                continue;
            }
            if best.is_none_or(|(bf, bpe, _, _)| (f, Reverse(pe)) > (bf, Reverse(bpe))) {
                best = Some((f, pe, false, j));
            }
        }
        let (free, _, own, idx) = best?;
        if free > 0 || (own && self.params.virtual_frames) {
            Some((idx, own))
        } else {
            None
        }
    }

    /// Picks and debits a slot; returns the granted global PE index.
    fn take_slot(&mut self) -> Option<u16> {
        let (idx, own) = self.pick_slot()?;
        if own {
            self.free_mirror[idx] -= 1;
            Some(self.pes[idx])
        } else {
            self.foster[idx].1 -= 1;
            Some(self.foster[idx].0)
        }
    }

    /// Handles a `FallocRequest` (`hops` counts inter-node forwards so a
    /// request that has visited every node queues instead of circulating
    /// forever).
    pub fn on_falloc(&mut self, req: PendingFalloc, hops: u16) -> FallocDecision {
        self.stats.requests += 1;
        match self.take_slot() {
            Some(pe) => {
                self.stats.grants += 1;
                FallocDecision::Grant { pe }
            }
            None if hops + 1 < self.total_nodes => {
                self.stats.forwards += 1;
                FallocDecision::Forward
            }
            None => {
                self.pending.push_back(req);
                self.stats.max_pending = self.stats.max_pending.max(self.pending.len());
                FallocDecision::Queued
            }
        }
    }

    /// Parks a request without arbitration — used by fault injection to
    /// simulate transient frame exhaustion. Unlike `Queued` decisions made
    /// by [`Dse::on_falloc`], a denial never touched the free-frame
    /// mirror, so a later [`Dse::re_arbitrate`] is guaranteed to find at
    /// least the capacity the denied request would have been granted.
    pub fn force_queue(&mut self, req: PendingFalloc) {
        self.stats.denials += 1;
        self.pending.push_back(req);
        self.stats.max_pending = self.stats.max_pending.max(self.pending.len());
    }

    /// Drains parked requests against current capacity (the `FallocRetry`
    /// timer handler). Same grant shape as [`Dse::on_frame_freed`] but
    /// without a mirror increment: nothing was freed, we are only
    /// re-running the arbitration a denial skipped.
    pub fn re_arbitrate(&mut self) -> Vec<(u16, PendingFalloc)> {
        self.drain_pending()
    }

    fn drain_pending(&mut self) -> Vec<(u16, PendingFalloc)> {
        let mut grants = Vec::new();
        while !self.pending.is_empty() {
            match self.take_slot() {
                Some(pe) => {
                    self.stats.grants += 1;
                    let req = self.pending.pop_front().expect("non-empty");
                    grants.push((pe, req));
                }
                None => break,
            }
        }
        grants
    }

    /// Handles a `FrameFreed` notification from local PE `pe`; returns any
    /// parked requests that can now be granted, as `(target_pe, request)`
    /// pairs. With failover armed, a foreign PE credits (or creates) a
    /// fostered mirror — the free can race the arbiter moving back home.
    pub fn on_frame_freed(&mut self, pe: u16) -> Vec<(u16, PendingFalloc)> {
        match self.pes.iter().position(|&p| p == pe) {
            Some(i) => self.free_mirror[i] += 1,
            None if self.failover_enabled => {
                match self.foster.binary_search_by_key(&pe, |&(p, _)| p) {
                    Ok(j) => self.foster[j].1 += 1,
                    Err(j) => self.foster.insert(j, (pe, 1)),
                }
            }
            None => panic!("FrameFreed from PE {pe} not in node {}", self.node),
        }
        self.drain_pending()
    }

    /// Arms the crash/failover protocol (a `dse_crash` schedule exists).
    pub fn enable_failover(&mut self) {
        self.failover_enabled = true;
    }

    /// Replaces the set of PEs excluded from arbitration because their
    /// LSE is (detectedly) dead. `pes` must come from the pure failover
    /// schedule — a function of the current cycle only — so that every
    /// engine recomputes the same exclusion at the same delivery.
    /// Returns parked requests that a shrunken exclusion set can now
    /// grant (a dead PE's restart re-opens capacity).
    pub fn set_dead_pes(&mut self, mut pes: Vec<u16>) -> Vec<(u16, PendingFalloc)> {
        pes.sort_unstable();
        let reopened = pes.len() < self.dead_pes.len();
        self.dead_pes = pes;
        if reopened {
            self.drain_pending()
        } else {
            Vec::new()
        }
    }

    /// Is this DSE currently alive? (Always true without failover.)
    #[inline]
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// The injected crash: the DSE falls silent. Returns the orphaned
    /// pending queue (the caller replays it to the successor from the
    /// admission-time schedule); fostered mirrors are simply lost — the
    /// affected nodes' LSEs re-register with the next arbiter.
    pub fn crash(&mut self) -> Vec<PendingFalloc> {
        debug_assert!(self.alive, "DSE {} crashed twice", self.node);
        self.alive = false;
        self.stats.crashes += 1;
        self.foster.clear();
        self.pending.drain(..).collect()
    }

    /// The planned restart: the DSE rejoins cold — empty queue, no
    /// fostered capacity, and its own mirrors zeroed until the node's
    /// LSEs re-register their authoritative free counts.
    pub fn restart(&mut self) {
        self.alive = true;
        self.free_mirror.iter_mut().for_each(|f| *f = 0);
        self.foster.clear();
        self.pending.clear();
    }

    /// Applies a `DseRegister` resync: `pe` reports `free` frames. An own
    /// PE resets its mirror; a foreign PE upserts a fostered mirror.
    /// Returns any parked requests the refreshed capacity can now grant.
    pub fn register(&mut self, pe: u16, free: u32) -> Vec<(u16, PendingFalloc)> {
        self.stats.resyncs += 1;
        match self.pes.iter().position(|&p| p == pe) {
            Some(i) => self.free_mirror[i] = free as i64,
            None => {
                debug_assert!(self.failover_enabled, "foreign register without failover");
                match self.foster.binary_search_by_key(&pe, |&(p, _)| p) {
                    Ok(j) => self.foster[j].1 = free as i64,
                    Err(j) => self.foster.insert(j, (pe, free as i64)),
                }
            }
        }
        self.drain_pending()
    }

    /// Drops fostered mirrors for global PEs in `[lo, hi)` — the home
    /// node's DSE restarted and owns them again.
    pub fn release_foster(&mut self, lo: u16, hi: u16) {
        self.foster.retain(|&(p, _)| p < lo || p >= hi);
    }

    /// Records that this (crashed) DSE's arbitration moved to a peer.
    pub fn note_failover(&mut self) {
        self.stats.failovers += 1;
    }

    /// Records FALLOC requests re-homed away from this dead DSE.
    pub fn note_rehomed(&mut self, n: u64) {
        self.stats.rehomed += n;
    }

    /// Builds the `AllocFrame` message for a grant.
    pub fn alloc_message(req: PendingFalloc) -> Message {
        Message::AllocFrame {
            requester: req.requester,
            for_inst: req.for_inst,
            thread: req.thread,
            sc: req.sc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(requester: u16) -> PendingFalloc {
        PendingFalloc {
            requester,
            for_inst: InstanceId(0),
            thread: ThreadId(0),
            sc: 1,
        }
    }

    #[test]
    fn grants_go_to_least_loaded_pe() {
        let mut d = Dse::new(0, vec![0, 1, 2], 2, 1, DseParams::default());
        // All equal: picks PE 0.
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 0 });
        // Now PE 1 and 2 have more free frames; ties break low.
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 1 });
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 2 });
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 0 });
    }

    #[test]
    fn exhaustion_queues_in_single_node() {
        let mut d = Dse::new(0, vec![0], 1, 1, DseParams::default());
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 0 });
        assert_eq!(d.on_falloc(req(1), 0), FallocDecision::Queued);
        assert_eq!(d.pending_len(), 1);
        assert_eq!(d.stats().max_pending, 1);
    }

    #[test]
    fn exhaustion_forwards_in_multi_node() {
        let mut d = Dse::new(0, vec![0], 1, 2, DseParams::default());
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 0 });
        // First hop forwards...
        assert_eq!(d.on_falloc(req(1), 0), FallocDecision::Forward);
        // ...but a request that already visited the other node queues.
        assert_eq!(d.on_falloc(req(1), 1), FallocDecision::Queued);
    }

    #[test]
    fn frame_freed_drains_pending() {
        let mut d = Dse::new(0, vec![0, 1], 1, 1, DseParams::default());
        d.on_falloc(req(0), 0);
        d.on_falloc(req(0), 0);
        assert_eq!(d.on_falloc(req(5), 0), FallocDecision::Queued);
        assert_eq!(d.on_falloc(req(6), 0), FallocDecision::Queued);
        let grants = d.on_frame_freed(1);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, 1);
        assert_eq!(grants[0].1.requester, 5);
        let grants = d.on_frame_freed(0);
        assert_eq!(grants[0].0, 0);
        assert_eq!(grants[0].1.requester, 6);
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn virtual_frames_never_queue() {
        let mut d = Dse::new(
            0,
            vec![0],
            1,
            1,
            DseParams {
                virtual_frames: true,
                ..DseParams::default()
            },
        );
        for _ in 0..10 {
            assert!(matches!(
                d.on_falloc(req(0), 0),
                FallocDecision::Grant { pe: 0 }
            ));
        }
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn mirror_balances_after_frees() {
        let mut d = Dse::new(0, vec![0, 1], 4, 1, DseParams::default());
        // Drain PE 0 twice, PE 1 twice (alternating picks).
        for _ in 0..4 {
            d.on_falloc(req(0), 0);
        }
        d.on_frame_freed(0);
        // PE 0 now has 3 free vs PE 1's 2 → next grant goes to PE 0.
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 0 });
    }

    #[test]
    fn reserve_op_serialises() {
        let mut d = Dse::new(0, vec![0], 1, 1, DseParams::default());
        assert_eq!(d.reserve_op(0), 4);
        assert_eq!(d.reserve_op(0), 8);
        assert_eq!(d.reserve_op(100), 104);
    }

    #[test]
    #[should_panic(expected = "not in node")]
    fn foreign_frame_freed_panics() {
        let mut d = Dse::new(0, vec![0, 1], 1, 1, DseParams::default());
        d.on_frame_freed(9);
    }

    #[test]
    fn denial_parks_and_re_arbitration_grants() {
        let mut d = Dse::new(0, vec![0, 1], 1, 1, DseParams::default());
        // An injected denial parks the request without consuming capacity…
        d.force_queue(req(3));
        assert_eq!(d.pending_len(), 1);
        assert_eq!(d.stats().denials, 1);
        assert_eq!(d.stats().grants, 0);
        // …so re-arbitration must find a frame for it.
        let grants = d.re_arbitrate();
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].1.requester, 3);
        assert_eq!(d.stats().grants, 1);
        // A second re-arbitration with nothing parked is a no-op.
        assert!(d.re_arbitrate().is_empty());
    }

    #[test]
    fn dead_pes_are_skipped_by_arbitration() {
        let mut d = Dse::new(0, vec![0, 1, 2], 2, 1, DseParams::default());
        d.set_dead_pes(vec![0]);
        // PE 0 would win every tie; while dead it must never be picked.
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 1 });
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 2 });
        assert_eq!(d.on_falloc(req(0), 0), FallocDecision::Grant { pe: 1 });
    }

    #[test]
    fn all_dead_queues_and_restart_reopens() {
        let mut d = Dse::new(0, vec![0], 2, 1, DseParams::default());
        d.set_dead_pes(vec![0]);
        assert_eq!(d.on_falloc(req(3), 0), FallocDecision::Queued);
        // The restart shrinks the exclusion set and re-arbitrates.
        let grants = d.set_dead_pes(vec![]);
        assert_eq!(grants.len(), 1);
        assert_eq!((grants[0].0, grants[0].1.requester), (0, 3));
    }

    #[test]
    fn dead_foster_slots_are_skipped_too() {
        let mut d = Dse::new(1, vec![1], 0, 2, DseParams::default());
        d.enable_failover();
        // Fostered capacity for PE 0 (a crashed node's PE)…
        d.register(0, 4);
        // …must not be granted while PE 0's LSE is itself dead.
        d.set_dead_pes(vec![0]);
        assert_eq!(d.on_falloc(req(1), 1), FallocDecision::Queued);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Dse::new(0, vec![0], 1, 2, DseParams::default());
        d.on_falloc(req(0), 0);
        d.on_falloc(req(0), 0); // forward
        d.on_falloc(req(0), 1); // queue
        let s = d.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.grants, 1);
        assert_eq!(s.forwards, 1);
        assert_eq!(s.max_pending, 1);
    }
}
