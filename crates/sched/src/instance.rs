//! Thread instances and their lifecycle.
//!
//! A thread *instance* is one dynamic execution of a static thread: it is
//! born when the scheduler grants a `FALLOC`, waits for its inputs
//! (tracked by the synchronisation counter), optionally programs DMA and
//! waits for it, executes, and dies at `STOP`. The state machine is the
//! paper's Figure 4 — the original DTA lifecycle plus the two DMA states
//! introduced by the prefetching mechanism.

use dta_isa::{FramePtr, Reg, ThreadId, NUM_REGS};
use std::fmt;

/// Globally unique identifier of a thread instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u64);

impl InstanceId {
    /// The raw token (used as the MFC `owner` field).
    #[inline]
    pub fn token(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Ids encode the owning PE in the high bits; render as pe.counter
        // so trace tables stay readable.
        let pe = self.0 >> 48;
        let ctr = self.0 & 0xFFFF_FFFF_FFFF;
        if pe == 0 {
            write!(f, "i{ctr}")
        } else {
            write!(f, "i{pe}.{ctr}")
        }
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Lifecycle states (paper Fig. 4). The two darker-background states of
/// the figure — [`ThreadState::ProgramDma`] and [`ThreadState::WaitDma`] —
/// exist only when prefetching is in play.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// Frame assigned; waiting for the synchronisation counter to reach
    /// zero ("Wait for stores").
    WaitStores,
    /// All inputs present; queued for a pipeline.
    Ready,
    /// Descheduled while its own `FALLOC` request is queued at the DSE
    /// (no frame capacity anywhere); re-readied when the grant arrives.
    WaitFalloc,
    /// On the pipeline executing its PF block ("Program DMA").
    ProgramDma,
    /// Off the pipeline, waiting for DMA completions ("Wait for DMA").
    WaitDma,
    /// On the pipeline executing PL/EX/PS ("Execution").
    Running,
    /// `STOP` executed.
    Done,
}

impl ThreadState {
    /// Is the instance occupying a pipeline in this state?
    #[inline]
    pub fn on_pipeline(self) -> bool {
        matches!(self, ThreadState::ProgramDma | ThreadState::Running)
    }
}

/// One dynamic thread instance.
///
/// The register file lives here: DTA's multithreading is
/// context-per-instance (as in SDF), so yielding at `DMAYIELD` and
/// resuming later costs no architectural copying.
#[derive(Clone)]
pub struct Instance {
    /// Unique id (also the DMA `owner` token).
    pub id: InstanceId,
    /// The static thread being executed.
    pub thread: ThreadId,
    /// The frame granted to this instance.
    pub frame: FramePtr,
    /// Remaining stores before the instance is ready (the SC).
    pub sc: u16,
    /// Lifecycle state.
    pub state: ThreadState,
    /// Saved program counter (valid when not on a pipeline).
    pub pc: u32,
    /// Architectural registers.
    pub regs: [i64; NUM_REGS],
    /// Frame input slots (64-bit values stored by producers).
    pub slots: Vec<i64>,
    /// Local-store byte address of this instance's prefetch buffer
    /// (`u32::MAX` when the thread declared none).
    pub pf_buf_addr: u32,
    /// Outstanding DMA transfers programmed by this instance.
    pub outstanding_dma: u16,
    /// Outstanding DMA transfers per MFC tag group.
    pub dma_by_tag: [u16; 32],
    /// Destination register of a deferred `FALLOC` (set while parked in
    /// [`ThreadState::WaitFalloc`]).
    pub pending_falloc: Option<Reg>,
    /// Cycle at which the instance became ready (for queue-delay stats).
    pub ready_at: u64,
    /// Has the instance performed an externally visible effect (remote
    /// store, FALLOC, memory write, DMA-out)? Untainted instances can be
    /// replayed from their input frame after a scheduler crash; tainted
    /// ones cannot (replay would double their effects) and become lost
    /// work reported by a typed error.
    pub tainted: bool,
}

impl Instance {
    /// Creates an instance in the *Wait for stores* state (or *Ready*
    /// directly when `sc == 0`).
    pub fn new(
        id: InstanceId,
        thread: ThreadId,
        frame: FramePtr,
        sc: u16,
        slots: u16,
        pf_buf_addr: u32,
    ) -> Self {
        Instance {
            id,
            thread,
            frame,
            sc,
            state: if sc == 0 {
                ThreadState::Ready
            } else {
                ThreadState::WaitStores
            },
            pc: 0,
            regs: [0; NUM_REGS],
            slots: vec![0; slots as usize],
            pf_buf_addr,
            outstanding_dma: 0,
            dma_by_tag: [0; 32],
            pending_falloc: None,
            ready_at: 0,
            tainted: false,
        }
    }

    /// Records that this instance programmed a DMA transfer with `tag`.
    pub fn dma_issued(&mut self, tag: u8) {
        self.outstanding_dma += 1;
        self.dma_by_tag[tag as usize] += 1;
    }

    /// Records a producer's store into `slot`, decrementing the SC.
    /// Returns `true` when this store made the instance ready.
    pub fn store(&mut self, slot: u16, value: i64) -> bool {
        assert!(
            (slot as usize) < self.slots.len(),
            "store to slot {slot} of {} (frame has {} slots)",
            self.id,
            self.slots.len()
        );
        assert!(
            self.sc > 0,
            "store to {} after its SC already reached zero",
            self.id
        );
        self.slots[slot as usize] = value;
        self.sc -= 1;
        if self.sc == 0 && self.state == ThreadState::WaitStores {
            self.state = ThreadState::Ready;
            true
        } else {
            false
        }
    }

    /// Reads a frame slot (`LOAD` semantics).
    #[inline]
    #[track_caller]
    pub fn slot(&self, slot: u16) -> i64 {
        self.slots[slot as usize]
    }

    /// Records a DMA completion. Returns `true` when this was the last
    /// outstanding transfer and the instance was in *Wait for DMA* (so it
    /// becomes ready again).
    pub fn dma_complete(&mut self, tag: u8) -> bool {
        assert!(
            self.outstanding_dma > 0,
            "{}: spurious DMA completion",
            self.id
        );
        assert!(
            self.dma_by_tag[tag as usize] > 0,
            "{}: spurious DMA completion for tag {tag}",
            self.id
        );
        self.dma_by_tag[tag as usize] -= 1;
        self.outstanding_dma -= 1;
        if self.outstanding_dma == 0 && self.state == ThreadState::WaitDma {
            self.state = ThreadState::Ready;
            true
        } else {
            false
        }
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("id", &self.id)
            .field("thread", &self.thread)
            .field("frame", &self.frame)
            .field("sc", &self.sc)
            .field("state", &self.state)
            .field("pc", &self.pc)
            .field("outstanding_dma", &self.outstanding_dma)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(sc: u16, slots: u16) -> Instance {
        Instance::new(
            InstanceId(1),
            ThreadId(0),
            FramePtr::new(0, 0),
            sc,
            slots,
            u32::MAX,
        )
    }

    #[test]
    fn zero_sc_starts_ready() {
        assert_eq!(inst(0, 0).state, ThreadState::Ready);
        assert_eq!(inst(2, 2).state, ThreadState::WaitStores);
    }

    #[test]
    fn stores_count_down_to_ready() {
        let mut i = inst(2, 2);
        assert!(!i.store(0, 10));
        assert_eq!(i.state, ThreadState::WaitStores);
        assert!(i.store(1, 20));
        assert_eq!(i.state, ThreadState::Ready);
        assert_eq!(i.slot(0), 10);
        assert_eq!(i.slot(1), 20);
    }

    #[test]
    fn repeated_store_to_same_slot_still_counts() {
        // The SC counts *stores*, not distinct slots (paper §2: "SC is
        // decremented every time a datum is stored in a thread frame").
        let mut i = inst(2, 1);
        assert!(!i.store(0, 1));
        assert!(i.store(0, 2));
        assert_eq!(i.slot(0), 2);
    }

    #[test]
    #[should_panic(expected = "after its SC")]
    fn store_after_ready_panics() {
        let mut i = inst(1, 1);
        i.store(0, 1);
        i.store(0, 2);
    }

    #[test]
    #[should_panic(expected = "slot")]
    fn store_out_of_range_panics() {
        let mut i = inst(1, 1);
        i.store(3, 1);
    }

    #[test]
    fn dma_completion_transitions_waitdma_to_ready() {
        let mut i = inst(0, 0);
        i.dma_issued(0);
        i.dma_issued(1);
        i.state = ThreadState::WaitDma;
        assert!(!i.dma_complete(0));
        assert_eq!(i.state, ThreadState::WaitDma);
        assert_eq!(i.dma_by_tag[0], 0);
        assert_eq!(i.dma_by_tag[1], 1);
        assert!(i.dma_complete(1));
        assert_eq!(i.state, ThreadState::Ready);
    }

    #[test]
    fn dma_completion_while_running_does_not_ready() {
        // A transfer that finishes before the thread yields: the thread is
        // still in ProgramDma on the pipeline; completion must not enqueue
        // it as ready.
        let mut i = inst(0, 0);
        i.state = ThreadState::ProgramDma;
        i.dma_issued(3);
        assert!(!i.dma_complete(3));
        assert_eq!(i.state, ThreadState::ProgramDma);
    }

    #[test]
    #[should_panic(expected = "spurious")]
    fn spurious_dma_completion_panics() {
        let mut i = inst(0, 0);
        i.dma_complete(0);
    }

    #[test]
    fn pipeline_occupancy_by_state() {
        assert!(ThreadState::Running.on_pipeline());
        assert!(ThreadState::ProgramDma.on_pipeline());
        assert!(!ThreadState::WaitDma.on_pipeline());
        assert!(!ThreadState::Ready.on_pipeline());
        assert!(!ThreadState::WaitStores.on_pipeline());
        assert!(!ThreadState::Done.on_pipeline());
    }
}
