//! Scheduler messages.
//!
//! The paper (§2): "Scheduler elements communicate among themselves by
//! sending messages. These messages can signal the allocation of a new
//! frame (FALLOC-Request and FALLOC-Response messages), releasing a frame
//! (FFREE message) and storing the data in remote frames."
//!
//! Delivery timing is owned by the core simulator's message network; this
//! module only defines the payloads and addressing.

use crate::instance::InstanceId;
use dta_isa::{FramePtr, ThreadId};

/// Message destinations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dest {
    /// The DSE of a node.
    Dse(u16),
    /// The LSE of a PE (global PE index).
    Lse(u16),
    /// The pipeline of a PE (FALLOC responses unblock it).
    Pipeline(u16),
}

/// Scheduler message payloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Message {
    /// PE → DSE: request a frame for an instance of `thread`.
    FallocRequest {
        /// PE whose pipeline is blocked waiting for the response.
        requester: u16,
        /// The requesting instance (correlation token for the response).
        for_inst: InstanceId,
        /// Static thread to instantiate.
        thread: ThreadId,
        /// Synchronisation count for the new instance.
        sc: u16,
        /// Inter-node forwarding hop count (0 = original request).
        hops: u16,
    },
    /// DSE → LSE: create the frame/instance on the chosen PE.
    AllocFrame {
        /// PE whose pipeline is blocked waiting for the response.
        requester: u16,
        /// The requesting instance (correlation token for the response).
        for_inst: InstanceId,
        /// Static thread to instantiate.
        thread: ThreadId,
        /// Synchronisation count for the new instance.
        sc: u16,
    },
    /// LSE → requesting pipeline: the granted frame pointer.
    FallocResponse {
        /// The granted frame.
        frame: FramePtr,
        /// The instance whose `FALLOC` this answers.
        for_inst: InstanceId,
    },
    /// DSE → requesting pipeline: the request was queued (no frame
    /// capacity anywhere). The requesting thread must deschedule so other
    /// ready threads can use the pipeline — the grant arrives later as a
    /// normal `FallocResponse`. (Without this, a fork storm on a single
    /// PE would deadlock the machine.)
    FallocDeferred {
        /// The instance whose `FALLOC` was queued.
        for_inst: InstanceId,
    },
    /// Any PE → owning LSE: store a value into a frame slot (decrements
    /// the target's SC).
    Store {
        /// Target frame.
        frame: FramePtr,
        /// Destination slot.
        slot: u16,
        /// The 64-bit datum.
        value: i64,
    },
    /// Any PE → owning LSE: release a frame.
    Ffree {
        /// Frame to release.
        frame: FramePtr,
    },
    /// LSE → its DSE: a frame was freed (updates the DSE's free-frame
    /// mirror and may unblock queued FALLOCs).
    FrameFreed {
        /// PE that freed the frame.
        pe: u16,
    },
    /// MFC → LSE: a DMA transfer belonging to `owner` completed.
    DmaDone {
        /// The owning instance.
        owner: InstanceId,
        /// Tag group of the completed command.
        tag: u8,
    },
    /// Memory system → pipeline: a deferred scalar `READ` resolved
    /// (sharded execution only — the sequential engine blocks inline).
    ReadDone {
        /// The loaded, sign-extended word.
        value: i64,
        /// Cycle at which the destination register becomes usable.
        ready_at: u64,
    },
    /// DSE → itself: re-arbitrate FALLOCs parked by an injected denial.
    /// Posted as a one-shot timer when fault injection denies an
    /// allocation; exempt from message faults so recovery always runs.
    FallocRetry,
    /// Fault injector → DSE: the scheduled crash fires — the DSE falls
    /// silent and its queue/mirrors are re-homed to the successor node.
    DseCrash,
    /// Fault injector → DSE: the scheduled restart fires — the DSE
    /// rejoins cold (empty queue, mirrors rebuilt from peer resyncs).
    DseRestart,
    /// Arbiter DSE → LSE: "your arbiter changed (crash or restart) —
    /// re-register your free-frame count with the current arbiter".
    DseResync,
    /// LSE → arbiter DSE: re-registration carrying the PE's authoritative
    /// free-frame count (rebuilds the arbiter's capacity mirror).
    DseRegister {
        /// The re-registering PE (global index).
        pe: u16,
        /// Its current free physical frame count.
        free: u32,
    },
    /// Restarted DSE → its former successor: the home node is back —
    /// drop any fostered capacity mirrors for its PEs.
    FosterRelease {
        /// The node whose DSE restarted.
        node: u16,
    },
    /// Fault injector → LSE: the scheduled per-PE scheduler crash fires —
    /// the PE's LSE (and with it the pipeline) falls silent; pre-start
    /// frames evacuate to the planned same-node peer.
    LseCrash,
    /// Fault injector → LSE: the scheduled LSE restart fires — the PE
    /// rejoins cold and re-registers its capacity with the arbiter.
    LseRestart,
    /// Crashed LSE → evacuation peer: re-admit one not-yet-started
    /// instance. The peer allocates a local frame for it; the original
    /// frame's filled slots follow as raw [`Message::LseAdoptStore`]s
    /// (`sync: false`) from the same source stamp stream, so they land in
    /// order before any later producer store.
    LseAdopt {
        /// The crashed PE (global index) the instance evacuates from.
        home: u16,
        /// The evacuated frame's index at the crashed LSE (correlation
        /// key for adopt-stores: producers still address `(home, index)`).
        index: u32,
        /// Static thread of the instance.
        thread: ThreadId,
        /// Remaining synchronisation count (0 for a replayed snapshot).
        sc: u16,
        /// Frame slot count of the thread.
        slots: u16,
        /// Whether the thread declared a prefetch buffer.
        needs_pf: bool,
    },
    /// A store for an evacuated frame, re-addressed to the adopting peer.
    /// `sync: false` replays the crashed frame's snapshot (raw slot set,
    /// no SC decrement — those stores were already counted); `sync: true`
    /// forwards a live producer store (ordinary SC-decrementing store).
    LseAdoptStore {
        /// The crashed PE the frame evacuated from.
        home: u16,
        /// The evacuated frame's index at the crashed LSE.
        index: u32,
        /// Destination slot.
        slot: u16,
        /// The 64-bit datum.
        value: i64,
        /// Ordinary store (`true`) vs snapshot replay (`false`).
        sync: bool,
    },
}

/// A routed message with a relative delivery delay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Envelope {
    /// Where it goes.
    pub to: Dest,
    /// What it carries.
    pub msg: Message,
    /// Cycles from send to delivery.
    pub delay: u64,
}

/// A deterministic source stamp for a posted message.
///
/// Parallel (sharded) execution delivers messages from concurrently
/// ticking units; to keep runs bit-identical regardless of shard count,
/// every posted envelope carries the *logical* identity of its send:
/// which unit sent it ([`MsgSeq::src_rank`], a partition-independent rank
/// over all units in the machine) and that unit's monotonically
/// increasing send counter ([`MsgSeq::seq`]). Sorting same-cycle
/// deliveries by this stamp reproduces the sequential simulator's
/// delivery order exactly, because ranks enumerate units in the order the
/// sequential loop ticks them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct MsgSeq {
    /// Rank of the sending unit in the sequential tick order (PEs first
    /// by global index, then DSEs by node).
    pub src_rank: u32,
    /// The sender's per-unit monotonic send counter.
    pub seq: u64,
}

impl MsgSeq {
    /// The first stamp of a unit.
    pub fn first(src_rank: u32) -> MsgSeq {
        MsgSeq { src_rank, seq: 0 }
    }

    /// Returns the current stamp and advances the counter
    /// (post-increment).
    pub fn bump(&mut self) -> MsgSeq {
        let s = *self;
        self.seq += 1;
        s
    }
}

/// An [`Envelope`] carrying its deterministic source stamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Stamped {
    /// The routed message.
    pub env: Envelope,
    /// Who sent it, and their how-many-eth send it was.
    pub stamp: MsgSeq,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_are_plain_data() {
        let e = Envelope {
            to: Dest::Lse(3),
            msg: Message::Store {
                frame: FramePtr::new(3, 7),
                slot: 1,
                value: -9,
            },
            delay: 5,
        };
        let e2 = e;
        assert_eq!(e, e2);
        match e2.msg {
            Message::Store { frame, slot, value } => {
                assert_eq!(frame, FramePtr::new(3, 7));
                assert_eq!(slot, 1);
                assert_eq!(value, -9);
            }
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn msgseq_orders_by_rank_then_counter() {
        let mut a = MsgSeq::first(0);
        let mut b = MsgSeq::first(1);
        let a0 = a.bump();
        let a1 = a.bump();
        let b0 = b.bump();
        assert!(a0 < a1, "per-unit sends are ordered by counter");
        assert!(a1 < b0, "lower ranks sort first regardless of counter");
        assert_eq!(
            a0,
            MsgSeq {
                src_rank: 0,
                seq: 0
            }
        );
        assert_eq!(a.bump().seq, 2);
    }

    #[test]
    fn stamped_preserves_envelope() {
        let e = Envelope {
            to: Dest::Dse(0),
            msg: Message::FallocRequest {
                requester: 2,
                for_inst: InstanceId(9),
                thread: ThreadId(5),
                sc: 3,
                hops: 0,
            },
            delay: 4,
        };
        let s = Stamped {
            env: e,
            stamp: MsgSeq::first(7),
        };
        assert_eq!(s.env, e);
        assert_eq!(s.stamp.src_rank, 7);
    }
}
