//! Scheduler protocol tests: LSE+DSE driven together through message
//! sequences, mirroring the core simulator's delivery logic without the
//! pipeline — the paper's §2 message protocol (FALLOC-Request/Response,
//! FFREE, remote stores) at the unit level.

use dta_isa::ThreadId;
use dta_sched::dse::FallocDecision;
use dta_sched::{Dse, DseParams, InstanceId, Lse, LseParams, PendingFalloc, ThreadState};

fn small_machine(pes: u16, frames: u32) -> (Dse, Vec<Lse>) {
    let params = LseParams {
        frame_capacity: frames,
        pf_buf_bytes: 64,
        pf_pool_size: frames,
        pf_region_base: 0,
        op_latency: 2,
        virtual_frames: false,
        park_on_full: false,
    };
    let lses = (0..pes).map(|p| Lse::new(p, params)).collect();
    let dse = Dse::new(0, (0..pes).collect(), frames, 1, DseParams::default());
    (dse, lses)
}

fn req(requester: u16, thread: u32, sc: u16) -> PendingFalloc {
    PendingFalloc {
        requester,
        for_inst: InstanceId(999),
        thread: ThreadId(thread),
        sc,
    }
}

#[test]
fn falloc_store_run_free_cycle() {
    let (mut dse, mut lses) = small_machine(2, 4);
    // A full life: request -> grant -> stores -> ready -> stop -> free ->
    // DSE mirror restored.
    let FallocDecision::Grant { pe } = dse.on_falloc(req(0, 1, 2), 0) else {
        panic!("expected grant");
    };
    let granted = lses[pe as usize]
        .alloc_frame(0, InstanceId(999), ThreadId(1), 2, 2, false)
        .expect("allocates");
    assert_eq!(granted.for_inst, InstanceId(999));

    assert!(lses[pe as usize].store(10, granted.frame, 0, 7).is_none());
    let ready = lses[pe as usize].store(12, granted.frame, 1, 8);
    assert_eq!(ready, Some(granted.instance));
    assert_eq!(
        lses[pe as usize].instance(granted.instance).state,
        ThreadState::Ready
    );

    lses[pe as usize].stop(granted.instance);
    assert!(lses[pe as usize].ffree(granted.frame).is_empty());
    let regrants = dse.on_frame_freed(pe);
    assert!(regrants.is_empty());
    assert_eq!(lses[pe as usize].free_frames(), 4);
}

#[test]
fn queued_requests_drain_in_fifo_order_across_pes() {
    let (mut dse, mut lses) = small_machine(2, 1);
    // Fill both PEs.
    let mut grants = Vec::new();
    for i in 0..2 {
        let FallocDecision::Grant { pe } = dse.on_falloc(req(0, 0, 0), 0) else {
            panic!("grant {i}");
        };
        let g = lses[pe as usize]
            .alloc_frame(0, InstanceId(i), ThreadId(0), 0, 0, false)
            .unwrap();
        grants.push((pe, g));
    }
    // Three more queue up.
    for i in 2..5 {
        assert_eq!(dse.on_falloc(req(i, 0, 0), 0), FallocDecision::Queued);
    }
    assert_eq!(dse.pending_len(), 3);
    // Free one frame: exactly one pending request is granted, FIFO.
    let (pe0, g0) = grants.remove(0);
    lses[pe0 as usize].stop(g0.instance);
    lses[pe0 as usize].ffree(g0.frame);
    let regrants = dse.on_frame_freed(pe0);
    assert_eq!(regrants.len(), 1);
    assert_eq!(regrants[0].0, pe0);
    assert_eq!(regrants[0].1.requester, 2);
    assert_eq!(dse.pending_len(), 2);
}

#[test]
fn remote_stores_route_by_frame_owner() {
    let (mut dse, mut lses) = small_machine(4, 4);
    // Grant a frame on whichever PE the DSE chooses; stores must be
    // applied on that owner regardless of who sends them.
    let FallocDecision::Grant { pe } = dse.on_falloc(req(3, 2, 1), 0) else {
        panic!("grant");
    };
    let g = lses[pe as usize]
        .alloc_frame(3, InstanceId(1), ThreadId(2), 1, 1, false)
        .unwrap();
    assert_eq!(g.frame.pe, pe);
    assert_eq!(lses[pe as usize].frame_owner(g.frame), Some(g.instance));
    let ready = lses[pe as usize].store(5, g.frame, 0, -3);
    assert_eq!(ready, Some(g.instance));
    assert_eq!(lses[pe as usize].instance(g.instance).slot(0), -3);
}

#[test]
fn grants_spread_across_the_node() {
    let (mut dse, mut lses) = small_machine(4, 8);
    let mut per_pe = [0u32; 4];
    for _ in 0..16 {
        let FallocDecision::Grant { pe } = dse.on_falloc(req(0, 0, 0), 0) else {
            panic!("grant");
        };
        lses[pe as usize]
            .alloc_frame(0, InstanceId(0), ThreadId(0), 0, 0, false)
            .unwrap();
        per_pe[pe as usize] += 1;
    }
    assert_eq!(per_pe, [4, 4, 4, 4], "least-loaded balancing");
}

#[test]
fn dma_lifecycle_through_the_lse() {
    let (mut dse, mut lses) = small_machine(1, 2);
    let FallocDecision::Grant { pe } = dse.on_falloc(req(0, 0, 0), 0) else {
        panic!("grant");
    };
    let g = lses[pe as usize]
        .alloc_frame(0, InstanceId(0), ThreadId(0), 0, 0, true)
        .unwrap();
    // Ready instance dispatched; programs two transfers and yields.
    assert_eq!(lses[0].pop_ready(), Some(g.instance));
    {
        let inst = lses[0].instance_mut(g.instance);
        inst.dma_issued(0);
        inst.dma_issued(1);
        inst.state = ThreadState::WaitDma;
    }
    assert!(!lses[0].dma_done(100, g.instance, 0));
    assert!(lses[0].dma_done(120, g.instance, 1));
    assert_eq!(lses[0].pop_ready(), Some(g.instance));
    assert_eq!(lses[0].instance(g.instance).ready_at, 120);
}

#[test]
fn pf_buffer_addresses_are_disjoint_per_live_instance() {
    let (mut dse, mut lses) = small_machine(1, 4);
    let mut addrs = Vec::new();
    for i in 0..4 {
        let FallocDecision::Grant { pe } = dse.on_falloc(req(0, 0, 0), 0) else {
            panic!("grant {i}");
        };
        let g = lses[pe as usize]
            .alloc_frame(0, InstanceId(i), ThreadId(0), 0, 0, true)
            .unwrap();
        addrs.push(lses[0].instance(g.instance).pf_buf_addr);
    }
    addrs.sort_unstable();
    addrs.dedup();
    assert_eq!(addrs.len(), 4, "prefetch buffers must not alias");
    // And each is 64 bytes apart (pf_buf_bytes).
    for w in addrs.windows(2) {
        assert!(w[1] - w[0] >= 64);
    }
}
