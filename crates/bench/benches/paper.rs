//! Criterion benchmarks: one group per paper table/figure.
//!
//! These measure the *simulator's* wall-clock cost of regenerating each
//! artifact at CI-friendly sizes (the full paper-scale regeneration is
//! `cargo run -p dta-bench --release --bin repro`). Keeping one group per
//! table/figure means a perf regression in any subsystem (pipeline,
//! scheduler, MFC, compiler) shows up against the artifact it slows down.

use criterion::{criterion_group, criterion_main, Criterion};
use dta_bench::{run, Bench};
use dta_core::SystemConfig;
use dta_workloads::Variant;

const PES: u16 = 8;

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_instruction_counts");
    g.sample_size(10);
    for bench in Bench::quick_suite() {
        g.bench_function(bench.name(), |b| {
            b.iter(|| run(bench, Variant::Baseline, SystemConfig::with_pes(PES)))
        });
    }
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_breakdown");
    g.sample_size(10);
    for variant in [Variant::Baseline, Variant::HandPrefetch, Variant::AutoPrefetch] {
        g.bench_function(format!("mmul16_{}", variant.label()), |b| {
            b.iter(|| run(Bench::Mmul(16), variant, SystemConfig::with_pes(PES)))
        });
    }
    g.finish();
}

fn bench_fig6_bitcnt(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_bitcnt_scalability");
    g.sample_size(10);
    for pes in [1u16, 8] {
        g.bench_function(format!("baseline_{pes}pe"), |b| {
            b.iter(|| run(Bench::Bitcnt(512), Variant::Baseline, SystemConfig::with_pes(pes)))
        });
        g.bench_function(format!("prefetch_{pes}pe"), |b| {
            b.iter(|| {
                run(
                    Bench::Bitcnt(512),
                    Variant::HandPrefetch,
                    SystemConfig::with_pes(pes),
                )
            })
        });
    }
    g.finish();
}

fn bench_fig7_mmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_mmul_scalability");
    g.sample_size(10);
    for pes in [1u16, 8] {
        g.bench_function(format!("baseline_{pes}pe"), |b| {
            b.iter(|| run(Bench::Mmul(16), Variant::Baseline, SystemConfig::with_pes(pes)))
        });
        g.bench_function(format!("prefetch_{pes}pe"), |b| {
            b.iter(|| run(Bench::Mmul(16), Variant::HandPrefetch, SystemConfig::with_pes(pes)))
        });
    }
    g.finish();
}

fn bench_fig8_zoom(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_zoom_scalability");
    g.sample_size(10);
    for pes in [1u16, 8] {
        g.bench_function(format!("baseline_{pes}pe"), |b| {
            b.iter(|| run(Bench::Zoom(16), Variant::Baseline, SystemConfig::with_pes(pes)))
        });
        g.bench_function(format!("prefetch_{pes}pe"), |b| {
            b.iter(|| run(Bench::Zoom(16), Variant::HandPrefetch, SystemConfig::with_pes(pes)))
        });
    }
    g.finish();
}

fn bench_fig9_usage(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_pipeline_usage");
    g.sample_size(10);
    g.bench_function("zoom16_prefetch", |b| {
        b.iter(|| run(Bench::Zoom(16), Variant::HandPrefetch, SystemConfig::with_pes(PES)))
    });
    g.finish();
}

fn bench_lat1(c: &mut Criterion) {
    let mut g = c.benchmark_group("lat1_always_hit_bound");
    g.sample_size(10);
    g.bench_function("mmul16_baseline_lat1", |b| {
        b.iter(|| {
            run(
                Bench::Mmul(16),
                Variant::Baseline,
                SystemConfig::with_pes(PES).latency_one(),
            )
        })
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("split_transactions_colsum32", |b| {
        let mut cfg = SystemConfig::with_pes(PES);
        cfg.dma_split_transactions = true;
        b.iter(|| run(Bench::Colsum(32), Variant::HandPrefetch, cfg.clone()))
    });
    g.bench_function("compiler_transform_mmul16", |b| {
        b.iter(|| Bench::Mmul(16).build(Variant::AutoPrefetch))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table5,
    bench_fig5,
    bench_fig6_bitcnt,
    bench_fig7_mmul,
    bench_fig8_zoom,
    bench_fig9_usage,
    bench_lat1,
    bench_ablations
);
criterion_main!(benches);
