//! Wall-clock benchmarks: one group per paper table/figure.
//!
//! These measure the *simulator's* wall-clock cost of regenerating each
//! artifact at CI-friendly sizes (the full paper-scale regeneration is
//! `cargo run -p dta-bench --release --bin repro`). Keeping one group per
//! table/figure means a perf regression in any subsystem (pipeline,
//! scheduler, MFC, compiler) shows up against the artifact it slows down.
//!
//! Plain `std::time::Instant` timing (`harness = false`) — the repo
//! builds hermetically, so no external benchmarking framework. Run with
//! `cargo bench -p dta-bench`.

use dta_bench::{run, Bench};
use dta_core::SystemConfig;
use dta_workloads::Variant;
use std::time::Instant;

const PES: u16 = 8;
const SAMPLES: u32 = 3;

/// Times `f` SAMPLES times and prints the best (least-noise) sample.
fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("{group}/{name}: {:.3} ms", best * 1e3);
}

fn bench_table5() {
    for b in Bench::quick_suite() {
        bench("table5_instruction_counts", &b.name(), || {
            run(b, Variant::Baseline, SystemConfig::with_pes(PES))
        });
    }
}

fn bench_fig5() {
    for variant in [
        Variant::Baseline,
        Variant::HandPrefetch,
        Variant::AutoPrefetch,
    ] {
        bench(
            "fig5_breakdown",
            &format!("mmul16_{}", variant.label()),
            || run(Bench::Mmul(16), variant, SystemConfig::with_pes(PES)),
        );
    }
}

fn bench_scalability(group: &str, b: Bench) {
    for pes in [1u16, 8] {
        bench(group, &format!("baseline_{pes}pe"), || {
            run(b, Variant::Baseline, SystemConfig::with_pes(pes))
        });
        bench(group, &format!("prefetch_{pes}pe"), || {
            run(b, Variant::HandPrefetch, SystemConfig::with_pes(pes))
        });
    }
}

fn bench_fig9_usage() {
    bench("fig9_pipeline_usage", "zoom16_prefetch", || {
        run(
            Bench::Zoom(16),
            Variant::HandPrefetch,
            SystemConfig::with_pes(PES),
        )
    });
}

fn bench_lat1() {
    bench("lat1_always_hit_bound", "mmul16_baseline_lat1", || {
        run(
            Bench::Mmul(16),
            Variant::Baseline,
            SystemConfig::with_pes(PES).latency_one(),
        )
    });
}

fn bench_ablations() {
    let mut cfg = SystemConfig::with_pes(PES);
    cfg.dma_split_transactions = true;
    bench("ablations", "split_transactions_colsum32", || {
        run(Bench::Colsum(32), Variant::HandPrefetch, cfg.clone())
    });
    bench("ablations", "compiler_transform_mmul16", || {
        Bench::Mmul(16).build(Variant::AutoPrefetch)
    });
}

fn main() {
    bench_table5();
    bench_fig5();
    bench_scalability("fig6_bitcnt_scalability", Bench::Bitcnt(512));
    bench_scalability("fig7_mmul_scalability", Bench::Mmul(16));
    bench_scalability("fig8_zoom_scalability", Bench::Zoom(16));
    bench_fig9_usage();
    bench_lat1();
    bench_ablations();
}
