//! The shipped `.dtasm` example programs must assemble, validate,
//! transform, and compute correct results.

use dta_compiler::{prefetch_program, TransformOptions};
use dta_core::{simulate, SystemConfig};
use dta_isa::asm::assemble;
use std::sync::Arc;

#[test]
fn dotprod_example_assembles_and_computes() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/asm/dotprod.dtasm"),
    )
    .expect("example file present");
    let program = assemble(&src).expect("assembles");
    assert!(dta_isa::validate_program(&program).is_empty());

    let expected: i32 = (1..=32).map(|i| i * (i + 1)).sum();
    let (_, sys) = simulate(SystemConfig::with_pes(4), Arc::new(program.clone()), &[]).unwrap();
    assert_eq!(sys.read_global_word("out", 0), Some(expected));

    // And the prefetched version agrees.
    let (pf, report) = prefetch_program(&program, &TransformOptions::default());
    assert_eq!(report.total_decoupled(), 2);
    let (stats, sys) = simulate(SystemConfig::with_pes(4), Arc::new(pf), &[]).unwrap();
    assert_eq!(sys.read_global_word("out", 0), Some(expected));
    assert_eq!(stats.aggregate.reads, 0);
}
