//! # dta-bench — the reproduction harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4) plus
//! the ablations called out in `DESIGN.md`:
//!
//! | experiment | paper artifact |
//! |------------|----------------|
//! | `config`   | Tables 2-4 (platform parameters) |
//! | `table5`   | Table 5 (dynamic instruction counts) |
//! | `fig5`     | Fig. 5a/5b (execution-time breakdown) |
//! | `fig6`     | Fig. 6a/6b (bitcnt time & scalability) |
//! | `fig7`     | Fig. 7a/7b (mmul time & scalability) |
//! | `fig8`     | Fig. 8a/8b (zoom time & scalability) |
//! | `fig9`     | Fig. 9 (pipeline usage) |
//! | `lat1`     | §4.3 latency-1 sweep |
//! | `ablate-split` | §3 split-transaction alternative |
//! | `ablate-vfp`   | §4.3 virtual frame pointers |
//! | `ablate-hw`    | bus/queue sensitivity |
//! | `parallel` | engine wall-clock, sequential vs epoch-sharded (`BENCH_parallel.json`) |
//! | `speed`    | host scheduler wall-clock, dense vs event-driven fast-forward (`BENCH_speed.json`) |
//! | `faults`   | fault-injection sweep: recovery cost vs rate (`BENCH_faults.json`) |
//! | `failover` | DSE crash/failover sweep (`BENCH_failover.json`) |
//! | `observe`  | observability overhead: bus off vs events vs full metrics + Perfetto (`BENCH_observe.json`) |
//! | `serve`    | service cache: the fig6/7/8 grid twice through `dta-serve` (`BENCH_serve.json`) |
//!
//! Run with `cargo run -p dta-bench --release --bin repro [-- <exp>...]`.
//!
//! Every untimed run goes through the process-wide
//! [`dta_serve::Service`] ([`runner::service`]): benchmark points are
//! [`dta_core::SimJob`] values, identical points are deduplicated by
//! content hash, and each [`Row`] records its `JobKey` and whether it
//! was served from cache.

pub mod experiments;
pub mod report;
pub mod runner;

pub use experiments::ExperimentResult;
pub use report::{emit, text_table};
pub use runner::{configure_service, run, service, sweep, Bench, Row, SweepPoint};
