//! Running one benchmark configuration and collecting a result row.

use dta_core::{simulate, Breakdown, ObsMode, RunStats, SchedMode, StallCat, System, SystemConfig};
use dta_workloads::{
    bitcnt, colsum, gather, mmul, stencil, vecscale, zoom, Variant, WorkloadProgram,
};
use std::sync::Arc;

/// A benchmark instance (workload + size).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bench {
    /// `bitcnt(n)` — n samples.
    Bitcnt(usize),
    /// `mmul(n)` — n×n matrices.
    Mmul(usize),
    /// `zoom(n)` — n×n source image.
    Zoom(usize),
    /// `vecscale(n, chunks)`.
    Vecscale(usize, usize),
    /// `stencil(n, chunks)`.
    Stencil(usize, usize),
    /// `colsum(n)`.
    Colsum(usize),
    /// `gather(n)` — data-dependent sparse gather (fast-forward stress).
    Gather(usize),
}

impl Bench {
    /// The paper's three benchmarks at the paper's sizes (§4.2:
    /// bitcnt(10000), mmul(32), zoom(32)).
    pub fn paper_suite() -> [Bench; 3] {
        [Bench::Bitcnt(10_000), Bench::Mmul(32), Bench::Zoom(32)]
    }

    /// Scaled-down suite for quick runs and CI.
    pub fn quick_suite() -> [Bench; 3] {
        [Bench::Bitcnt(512), Bench::Mmul(16), Bench::Zoom(16)]
    }

    /// Display name, matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Bench::Bitcnt(n) => format!("bitcnt({n})"),
            Bench::Mmul(n) => format!("mmul({n})"),
            Bench::Zoom(n) => format!("zoom({n})"),
            Bench::Vecscale(n, _) => format!("vecscale({n})"),
            Bench::Stencil(n, _) => format!("stencil({n})"),
            Bench::Colsum(n) => format!("colsum({n})"),
            Bench::Gather(n) => format!("gather({n})"),
        }
    }

    /// Builds the program for a variant.
    pub fn build(&self, variant: Variant) -> WorkloadProgram {
        match *self {
            Bench::Bitcnt(n) => bitcnt::build(n, variant),
            Bench::Mmul(n) => mmul::build(n, variant),
            Bench::Zoom(n) => zoom::build(n, variant),
            Bench::Vecscale(n, c) => vecscale::build(n, c, variant),
            Bench::Stencil(n, c) => stencil::build(n, c, variant),
            Bench::Colsum(n) => colsum::build(n, variant),
            Bench::Gather(n) => gather::build(n, variant),
        }
    }

    fn verify(&self, sys: &dta_core::System) -> Result<(), String> {
        match *self {
            Bench::Bitcnt(n) => bitcnt::verify(sys, n),
            Bench::Mmul(n) => mmul::verify(sys, n),
            Bench::Zoom(n) => zoom::verify(sys, n),
            Bench::Vecscale(n, _) => vecscale::verify(sys, n),
            Bench::Stencil(n, _) => stencil::verify(sys, n),
            Bench::Colsum(n) => colsum::verify(sys, n),
            Bench::Gather(n) => gather::verify(sys, n),
        }
    }
}

/// One measured data point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name, e.g. `mmul(32)`.
    pub bench: String,
    /// Variant label (`baseline` / `prefetch-hand` / `prefetch-auto`).
    pub variant: String,
    /// Number of PEs.
    pub pes: u16,
    /// Main-memory latency used.
    pub mem_latency: u64,
    /// Execution time in cycles.
    pub cycles: u64,
    /// Average per-SPU breakdown.
    pub breakdown: Breakdown,
    /// Table 5 counters: (total, LOAD, STORE, READ, WRITE).
    pub table5: (u64, u64, u64, u64, u64),
    /// Thread instances created.
    pub instances: u64,
    /// DMA commands issued.
    pub dma_commands: u64,
    /// Bus utilisation.
    pub bus_utilisation: f64,
    /// SP-pipeline PF cycles (sp_pf_overlap extension).
    pub sp_pf_cycles: u64,
    /// Cache hits / misses (cache extension; zero without a cache).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Result checked against the host reference.
    pub verified: bool,
    /// Injected transient DMA failure rate, ppm (`None` = no fault plan).
    pub fault_rate_ppm: Option<u32>,
    /// Fault-plan seed (`None` = no fault plan).
    pub fault_seed: Option<u64>,
    /// DMA command retries performed.
    pub dma_retries: u64,
    /// DMA commands that exhausted their retry budget.
    pub dma_exhausted: u64,
    /// PEs degraded to the PF-skip fallback path.
    pub degraded_pes: u64,
    /// Thread instances substituted with their fallback twin.
    pub fallback_instances: u64,
    /// Planned DSE crashes delivered (failover PR; zero without a
    /// `dse_crash` schedule).
    pub dse_crashes: u64,
    /// Arbitration handovers to a successor DSE.
    pub failovers: u64,
    /// FALLOC requests re-homed away from a dead DSE.
    pub rehomed_fallocs: u64,
    /// Mirror-resync registrations processed after crash or restart.
    pub resync_msgs: u64,
    /// Host wall-clock for the run, milliseconds (only the `parallel`
    /// engine benchmark measures this; `None` elsewhere).
    pub wall_ms: Option<f64>,
    /// Engine mode label for the `parallel` benchmark (`None` elsewhere).
    pub parallelism: Option<String>,
    /// Observability mode label (`None` when the bus is off).
    pub obs_mode: Option<String>,
    /// Structured events collected on the bus.
    pub obs_events: u64,
    /// Events dropped by the bounded per-unit rings.
    pub obs_dropped: u64,
    /// Cycles a pipeline spent busy while its own MFC had DMA in flight
    /// (the paper's non-blocking overlap; zero unless metrics are on).
    pub overlap_cycles: u64,
    /// `overlap_cycles` over total busy cycles (zero unless metrics on).
    pub overlap_fraction: f64,
    /// Scheduler label (`dense` / `fast-forward`).
    pub sched: String,
    /// Distinct simulated cycles the engine actually visited (host-side
    /// work counter; simulated results never depend on it).
    pub visited_cycles: u64,
    /// PE ticks the engine performed.
    pub pe_ticks: u64,
    /// Blocked/idle PE ticks the fast-forward scheduler skipped.
    pub skipped_ticks: u64,
    /// Barrier epochs the sharded engine ran (zero on the sequential
    /// engine).
    pub epochs: u64,
    /// Fixed-width epochs the adaptive coordinator merged away.
    pub merged_epochs: u64,
}

impl Row {
    /// Percentage helper for report printing.
    pub fn pct(&self, cat: StallCat) -> f64 {
        self.breakdown.pct(cat)
    }
}

/// Runs one benchmark configuration, verifying the result. Returns an
/// error description on deadlock/launch failure (used by ablations that
/// deliberately under-provision the machine).
pub fn try_run(bench: Bench, variant: Variant, cfg: SystemConfig) -> Result<Row, String> {
    try_run_timed(bench, variant, cfg).map(|(row, _)| row)
}

/// Like [`try_run`], additionally returning the host wall-clock of the
/// `simulate` call alone (excluding workload build and host-side
/// verification), in milliseconds.
pub fn try_run_timed(
    bench: Bench,
    variant: Variant,
    cfg: SystemConfig,
) -> Result<(Row, f64), String> {
    try_run_sys(bench, variant, cfg).map(|(row, ms, _)| (row, ms))
}

/// Core runner: simulates, verifies, and returns the row (with any
/// observability fields filled from the system), the simulate wall
/// clock in milliseconds, and the finished [`System`] for callers that
/// need the full event stream or a trace export.
pub fn try_run_sys(
    bench: Bench,
    variant: Variant,
    cfg: SystemConfig,
) -> Result<(Row, f64, System), String> {
    let wp = bench.build(variant);
    let mem_latency = cfg.mem_latency;
    let pes = cfg.total_pes();
    let obs_mode = cfg.obs.mode;
    let sched = cfg.sched;
    let started = std::time::Instant::now();
    let (stats, sys) = simulate(cfg, Arc::new(wp.program), &wp.args)
        .map_err(|e| format!("{} [{}]: {e}", bench.name(), variant.label()))?;
    let sim_ms = started.elapsed().as_secs_f64() * 1e3;
    bench.verify(&sys).map_err(|e| {
        format!(
            "{} [{}]: result mismatch: {e}",
            bench.name(),
            variant.label()
        )
    })?;
    let mut row = row_from(&bench, variant, pes, mem_latency, &stats, true);
    row.obs_mode = obs_label(obs_mode);
    row.sched = match sched {
        SchedMode::Dense => "dense".into(),
        SchedMode::FastForward => "fast-forward".into(),
    };
    let engine = sys.engine_report();
    row.visited_cycles = engine.visited_cycles;
    row.pe_ticks = engine.pe_ticks;
    row.skipped_ticks = engine.skipped_ticks;
    row.epochs = engine.epochs;
    row.merged_epochs = engine.merged_epochs;
    if let Some(stream) = sys.obs() {
        row.obs_events = stream.len() as u64;
        row.obs_dropped = stream.dropped;
    }
    if let Some(metrics) = sys.metrics() {
        row.overlap_cycles = metrics.overlap_cycles;
        row.overlap_fraction = metrics.overlap_fraction();
    }
    Ok((row, sim_ms, sys))
}

/// Like [`try_run_timed`], but additionally renders the Perfetto trace
/// (forcing full observability if the config left it off). Returns the
/// row, the simulate wall clock, the trace render wall clock (both in
/// milliseconds), and the `trace.json` text.
pub fn try_run_traced(
    bench: Bench,
    variant: Variant,
    mut cfg: SystemConfig,
) -> Result<(Row, f64, f64, String), String> {
    cfg.obs.mode = ObsMode::All;
    let (row, sim_ms, sys) = try_run_sys(bench, variant, cfg)?;
    let started = std::time::Instant::now();
    let trace = sys
        .perfetto_trace()
        .expect("full observability was forced on");
    let render_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok((row, sim_ms, render_ms, trace))
}

fn obs_label(mode: ObsMode) -> Option<String> {
    match mode {
        ObsMode::Off => None,
        ObsMode::Events => Some("events".into()),
        ObsMode::Metrics => Some("metrics".into()),
        ObsMode::All => Some("all".into()),
    }
}

/// Runs one benchmark configuration, verifying the result.
///
/// # Panics
///
/// On simulation failure or result mismatch.
pub fn run(bench: Bench, variant: Variant, cfg: SystemConfig) -> Row {
    try_run(bench, variant, cfg).unwrap_or_else(|e| panic!("{e}"))
}

fn row_from(
    bench: &Bench,
    variant: Variant,
    pes: u16,
    mem_latency: u64,
    stats: &RunStats,
    verified: bool,
) -> Row {
    Row {
        bench: bench.name(),
        variant: variant.label().to_string(),
        pes,
        mem_latency,
        cycles: stats.cycles,
        breakdown: stats.breakdown(),
        table5: stats.table5_row(),
        instances: stats.instances,
        dma_commands: stats.dma_commands,
        bus_utilisation: stats.bus_utilisation,
        sp_pf_cycles: stats.aggregate.sp_pf_cycles,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        verified,
        fault_rate_ppm: None,
        fault_seed: None,
        dma_retries: stats.dma_retries,
        dma_exhausted: stats.dma_exhausted,
        degraded_pes: stats.degraded_pes.len() as u64,
        fallback_instances: stats.fallback_instances,
        dse_crashes: stats.dse_crashes,
        failovers: stats.failovers,
        rehomed_fallocs: stats.rehomed_fallocs,
        resync_msgs: stats.resync_msgs,
        wall_ms: None,
        parallelism: None,
        obs_mode: None,
        obs_events: 0,
        obs_dropped: 0,
        overlap_cycles: 0,
        overlap_fraction: 0.0,
        sched: String::new(),
        visited_cycles: 0,
        pe_ticks: 0,
        skipped_ticks: 0,
        epochs: 0,
        merged_epochs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_and_verifies() {
        for bench in Bench::quick_suite() {
            let row = run(bench, Variant::Baseline, SystemConfig::with_pes(2));
            assert!(row.verified);
            assert!(row.cycles > 0);
            assert_eq!(row.pes, 2);
        }
    }

    #[test]
    fn names_match_paper_style() {
        assert_eq!(Bench::Mmul(32).name(), "mmul(32)");
        assert_eq!(Bench::Bitcnt(10_000).name(), "bitcnt(10000)");
    }
}
