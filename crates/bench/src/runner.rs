//! Running one benchmark configuration and collecting a result row.
//!
//! Since the jobs-as-values refactor this module is a thin client of
//! [`dta_serve::Service`]: a benchmark point becomes a [`SimJob`] value,
//! the job goes to the process-wide service (identical points hit the
//! content-addressed cache or coalesce onto an in-flight run), and the
//! returned [`dta_core::JobResult`] is folded into a [`Row`].
//!
//! The timed paths ([`try_run_timed`], [`try_run_traced`]) bypass the
//! cache on purpose, calling [`run_job`] directly: the speed/parallel/
//! observe benchmarks measure the *simulator*, and a cache hit would
//! report a near-zero wall clock and corrupt every measured speedup.

use dta_core::{
    run_job, Breakdown, GlobalRead, JobResult, MetricsSink, ObsMode, RunStats, SchedMode, SimJob,
    StallCat, SystemConfig,
};
use dta_serve::Service;
use dta_workloads::{
    bitcnt, colsum, gather, mmul, stencil, vecscale, zoom, Variant, WorkloadProgram,
};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// The process-wide simulation service every untimed run goes through.
/// Sharing one instance deduplicates identical points *across*
/// experiments in a `repro` invocation, not just within one sweep.
static SERVICE: OnceLock<Service> = OnceLock::new();

/// Configures the shared service (sweep workers, optional on-disk
/// result store, optional per-job wall-clock deadline in milliseconds).
/// First call wins — call it from `main` before any run; later calls
/// (and runs before any call) fall back to a sequential, memory-only
/// service.
pub fn configure_service(threads: usize, disk_dir: Option<&Path>, deadline_ms: Option<u64>) {
    let _ = SERVICE.set(Service::new(dta_serve::ServiceConfig {
        threads,
        disk_dir: disk_dir.map(Path::to_path_buf),
        deadline: deadline_ms.map(std::time::Duration::from_millis),
        ..dta_serve::ServiceConfig::default()
    }));
}

/// The shared service (sequential and memory-only unless
/// [`configure_service`] ran first).
pub fn service() -> &'static Service {
    SERVICE.get_or_init(|| Service::in_memory(1))
}

/// A benchmark instance (workload + size).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bench {
    /// `bitcnt(n)` — n samples.
    Bitcnt(usize),
    /// `mmul(n)` — n×n matrices.
    Mmul(usize),
    /// `zoom(n)` — n×n source image.
    Zoom(usize),
    /// `vecscale(n, chunks)`.
    Vecscale(usize, usize),
    /// `stencil(n, chunks)`.
    Stencil(usize, usize),
    /// `colsum(n)`.
    Colsum(usize),
    /// `gather(n)` — data-dependent sparse gather (fast-forward stress).
    Gather(usize),
}

impl Bench {
    /// The paper's three benchmarks at the paper's sizes (§4.2:
    /// bitcnt(10000), mmul(32), zoom(32)).
    pub fn paper_suite() -> [Bench; 3] {
        [Bench::Bitcnt(10_000), Bench::Mmul(32), Bench::Zoom(32)]
    }

    /// Scaled-down suite for quick runs and CI.
    pub fn quick_suite() -> [Bench; 3] {
        [Bench::Bitcnt(512), Bench::Mmul(16), Bench::Zoom(16)]
    }

    /// Display name, matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Bench::Bitcnt(n) => format!("bitcnt({n})"),
            Bench::Mmul(n) => format!("mmul({n})"),
            Bench::Zoom(n) => format!("zoom({n})"),
            Bench::Vecscale(n, _) => format!("vecscale({n})"),
            Bench::Stencil(n, _) => format!("stencil({n})"),
            Bench::Colsum(n) => format!("colsum({n})"),
            Bench::Gather(n) => format!("gather({n})"),
        }
    }

    /// Builds the program for a variant.
    pub fn build(&self, variant: Variant) -> WorkloadProgram {
        match *self {
            Bench::Bitcnt(n) => bitcnt::build(n, variant),
            Bench::Mmul(n) => mmul::build(n, variant),
            Bench::Zoom(n) => zoom::build(n, variant),
            Bench::Vecscale(n, c) => vecscale::build(n, c, variant),
            Bench::Stencil(n, c) => stencil::build(n, c, variant),
            Bench::Colsum(n) => colsum::build(n, variant),
            Bench::Gather(n) => gather::build(n, variant),
        }
    }

    /// Checks a finished run against the host reference. Works on any
    /// [`GlobalRead`] view — a live `System` or the serializable
    /// `GlobalSnapshot` a cached [`JobResult`] carries.
    pub fn verify(&self, sys: &dyn GlobalRead) -> Result<(), String> {
        match *self {
            Bench::Bitcnt(n) => bitcnt::verify(sys, n),
            Bench::Mmul(n) => mmul::verify(sys, n),
            Bench::Zoom(n) => zoom::verify(sys, n),
            Bench::Vecscale(n, _) => vecscale::verify(sys, n),
            Bench::Stencil(n, _) => stencil::verify(sys, n),
            Bench::Colsum(n) => colsum::verify(sys, n),
            Bench::Gather(n) => gather::verify(sys, n),
        }
    }
}

/// One point of a sweep grid: a benchmark configuration to run through
/// [`sweep`].
#[derive(Clone)]
pub struct SweepPoint {
    /// Workload + size.
    pub bench: Bench,
    /// Program variant.
    pub variant: Variant,
    /// Machine configuration.
    pub cfg: SystemConfig,
}

impl SweepPoint {
    /// Convenience constructor.
    pub fn new(bench: Bench, variant: Variant, cfg: SystemConfig) -> SweepPoint {
        SweepPoint {
            bench,
            variant,
            cfg,
        }
    }
}

/// One measured data point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name, e.g. `mmul(32)`.
    pub bench: String,
    /// Variant label (`baseline` / `prefetch-hand` / `prefetch-auto`).
    pub variant: String,
    /// Number of PEs.
    pub pes: u16,
    /// Main-memory latency used.
    pub mem_latency: u64,
    /// Execution time in cycles.
    pub cycles: u64,
    /// Average per-SPU breakdown.
    pub breakdown: Breakdown,
    /// Table 5 counters: (total, LOAD, STORE, READ, WRITE).
    pub table5: (u64, u64, u64, u64, u64),
    /// Thread instances created.
    pub instances: u64,
    /// DMA commands issued.
    pub dma_commands: u64,
    /// Bus utilisation.
    pub bus_utilisation: f64,
    /// SP-pipeline PF cycles (sp_pf_overlap extension).
    pub sp_pf_cycles: u64,
    /// Cache hits / misses (cache extension; zero without a cache).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Result checked against the host reference.
    pub verified: bool,
    /// Injected transient DMA failure rate, ppm (`None` = no fault plan).
    pub fault_rate_ppm: Option<u32>,
    /// Fault-plan seed (`None` = no fault plan).
    pub fault_seed: Option<u64>,
    /// DMA command retries performed.
    pub dma_retries: u64,
    /// DMA commands that exhausted their retry budget.
    pub dma_exhausted: u64,
    /// PEs degraded to the PF-skip fallback path.
    pub degraded_pes: u64,
    /// Thread instances substituted with their fallback twin.
    pub fallback_instances: u64,
    /// Planned DSE crashes delivered (failover PR; zero without a
    /// `dse_crash` schedule).
    pub dse_crashes: u64,
    /// Arbitration handovers to a successor DSE.
    pub failovers: u64,
    /// FALLOC requests re-homed away from a dead DSE.
    pub rehomed_fallocs: u64,
    /// Mirror-resync registrations processed after crash or restart.
    pub resync_msgs: u64,
    /// Planned LSE crashes delivered (robustness PR; zero without an
    /// `lse_crash` schedule).
    pub lse_crashes: u64,
    /// Pre-start frames evacuated to a same-node peer at LSE crashes.
    pub evacuated_frames: u64,
    /// Instances re-admitted at an adopting peer (evacuees plus replayed
    /// untainted kills, so ≥ `evacuated_frames`).
    pub readmitted_instances: u64,
    /// Started instances killed by LSE crashes (tainted ones are lost).
    pub killed_instances: u64,
    /// Host wall-clock for the run, milliseconds (only the wall-clock
    /// benchmarks measure this; `None` elsewhere).
    pub wall_ms: Option<f64>,
    /// Engine mode label for the `parallel` benchmark (`None` elsewhere).
    pub parallelism: Option<String>,
    /// Observability mode label (`None` when the bus is off).
    pub obs_mode: Option<String>,
    /// Structured events collected on the bus.
    pub obs_events: u64,
    /// Events dropped by the bounded per-unit rings.
    pub obs_dropped: u64,
    /// Cycles a pipeline spent busy while its own MFC had DMA in flight
    /// (the paper's non-blocking overlap; zero unless metrics are on).
    pub overlap_cycles: u64,
    /// `overlap_cycles` over total busy cycles (zero unless metrics on).
    pub overlap_fraction: f64,
    /// Scheduler label (`dense` / `fast-forward`).
    pub sched: String,
    /// Distinct simulated cycles the engine actually visited (host-side
    /// work counter; simulated results never depend on it).
    pub visited_cycles: u64,
    /// PE ticks the engine performed.
    pub pe_ticks: u64,
    /// Blocked/idle PE ticks the fast-forward scheduler skipped.
    pub skipped_ticks: u64,
    /// Barrier epochs the sharded engine ran (zero on the sequential
    /// engine).
    pub epochs: u64,
    /// Fixed-width epochs the adaptive coordinator merged away.
    pub merged_epochs: u64,
    /// Per-shard host wall time, µs (one entry per shard; the sequential
    /// engines report a single entry). Host-side — cached rows replay
    /// the producing run's clock.
    pub shard_wall_us: Vec<u64>,
    /// Host wall time spent in epoch-barrier merges, µs.
    pub merge_wall_us: u64,
    /// Events delivered to PEs (LSE + pipeline) — per-unit host work.
    pub pe_deliveries: u64,
    /// Events delivered to DSEs (DSEs never tick; this is their entire
    /// host cost).
    pub dse_deliveries: u64,
    /// Shared memory-system transactions served.
    pub mem_requests: u64,
    /// Mean fast-forward wake-heap occupancy (0 under dense).
    pub wake_heap_mean: f64,
    /// Peak fast-forward wake-heap occupancy.
    pub wake_heap_max: u64,
    /// Memoized segment replays fired (0 with memo off).
    pub memo_hits: u64,
    /// Segment recordings started (memo cold paths).
    pub memo_misses: u64,
    /// Simulated cycles covered by replays instead of interpretation.
    pub memo_replayed_cycles: u64,
    /// Replay attempts refused (contention window open, invalidated
    /// recording, cache full, or the cycle budget would be crossed).
    pub memo_aborts: u64,
    /// Content hash of the job that produced this row (`JobKey` hex).
    pub job_key: String,
    /// Whether this row was served from the result cache (memory, disk
    /// or coalesced onto an in-flight run) instead of simulating.
    pub cache_hit: bool,
}

impl Row {
    /// Percentage helper for report printing.
    pub fn pct(&self, cat: StallCat) -> f64 {
        self.breakdown.pct(cat)
    }
}

/// Builds the [`SimJob`] value for one benchmark point. The job is pure
/// data — hashable, serializable and independent of any live machine.
pub fn job_for(bench: Bench, variant: Variant, cfg: SystemConfig) -> SimJob {
    let wp = bench.build(variant);
    SimJob::new(Arc::new(wp.program), wp.args, cfg)
}

/// Folds a job's result into a [`Row`], verifying the outcome against
/// the host reference via the result's detached global snapshot.
pub(crate) fn row_from_result(
    bench: Bench,
    variant: Variant,
    cfg: &SystemConfig,
    result: &JobResult,
) -> Result<Row, String> {
    let out = match &result.outcome {
        Ok(out) => out,
        Err(e) => return Err(format!("{} [{}]: {e}", bench.name(), variant.label())),
    };
    bench.verify(&out.globals).map_err(|e| {
        format!(
            "{} [{}]: result mismatch: {e}",
            bench.name(),
            variant.label()
        )
    })?;
    let mut row = row_from(
        &bench,
        variant,
        cfg.total_pes(),
        cfg.mem_latency,
        &out.stats,
    );
    row.job_key = result.key.hex();
    row.obs_mode = obs_label(cfg.obs.mode);
    row.sched = match cfg.sched {
        SchedMode::Dense => "dense".into(),
        SchedMode::FastForward => "fast-forward".into(),
    };
    row.visited_cycles = out.engine.visited_cycles;
    row.pe_ticks = out.engine.pe_ticks;
    row.skipped_ticks = out.engine.skipped_ticks;
    row.epochs = out.engine.epochs;
    row.merged_epochs = out.engine.merged_epochs;
    row.shard_wall_us = out.engine.shard_wall_us.clone();
    row.merge_wall_us = out.engine.merge_wall_us;
    row.pe_deliveries = out.engine.pe_deliveries;
    row.dse_deliveries = out.engine.dse_deliveries;
    row.mem_requests = out.engine.mem_requests;
    row.wake_heap_mean = out.engine.wake_heap_occupancy.mean();
    row.wake_heap_max = out.engine.wake_heap_occupancy.max;
    row.memo_hits = out.engine.memo_hits;
    row.memo_misses = out.engine.memo_misses;
    row.memo_replayed_cycles = out.engine.memo_replayed_cycles;
    row.memo_aborts = out.engine.memo_aborts;
    if let Some(stream) = &out.obs {
        row.obs_events = stream.len() as u64;
        row.obs_dropped = stream.dropped;
        // Metrics are a pure fold over the stream, so a cached stream
        // yields the same report a live run would.
        let mut sink = MetricsSink::new(cfg.total_pes());
        stream.feed(&mut sink);
        let metrics = sink.finish();
        row.overlap_cycles = metrics.overlap_cycles;
        row.overlap_fraction = metrics.overlap_fraction();
    }
    Ok(row)
}

/// Runs one benchmark configuration through the shared service,
/// verifying the result. Returns an error description on deadlock or
/// launch failure (used by ablations that deliberately under-provision
/// the machine). Identical points are served from the cache.
pub fn try_run(bench: Bench, variant: Variant, cfg: SystemConfig) -> Result<Row, String> {
    let job = job_for(bench, variant, cfg);
    let done = service().submit(&job);
    let mut row = row_from_result(bench, variant, &job.config, &done.result)?;
    row.cache_hit = done.status.is_hit();
    Ok(row)
}

/// Like [`try_run`], additionally returning the host wall-clock of the
/// simulation alone (excluding workload build and host-side
/// verification), in milliseconds. **Bypasses the cache**: a hit would
/// report lookup time, not simulation time.
pub fn try_run_timed(
    bench: Bench,
    variant: Variant,
    cfg: SystemConfig,
) -> Result<(Row, f64), String> {
    let job = job_for(bench, variant, cfg);
    let started = std::time::Instant::now();
    let result = run_job(&job);
    let sim_ms = started.elapsed().as_secs_f64() * 1e3;
    let row = row_from_result(bench, variant, &job.config, &result)?;
    Ok((row, sim_ms))
}

/// Like [`try_run_timed`], additionally returning the full [`RunStats`]
/// so callers can hard-assert byte-identity of simulated results across
/// engine/memoization configurations (the `speed` benchmark does).
pub fn try_run_timed_stats(
    bench: Bench,
    variant: Variant,
    cfg: SystemConfig,
) -> Result<(Row, f64, RunStats), String> {
    let job = job_for(bench, variant, cfg);
    let started = std::time::Instant::now();
    let result = run_job(&job);
    let sim_ms = started.elapsed().as_secs_f64() * 1e3;
    let row = row_from_result(bench, variant, &job.config, &result)?;
    let stats = result
        .outcome
        .as_ref()
        .expect("row_from_result verified")
        .stats
        .clone();
    Ok((row, sim_ms, stats))
}

/// Like [`try_run_timed`], but additionally renders the Perfetto trace
/// (forcing full observability if the config left it off). Returns the
/// row, the simulate wall clock, the trace render wall clock (both in
/// milliseconds), and the `trace.json` text. Bypasses the cache like
/// every timed path.
pub fn try_run_traced(
    bench: Bench,
    variant: Variant,
    mut cfg: SystemConfig,
) -> Result<(Row, f64, f64, String), String> {
    cfg.obs.mode = ObsMode::All;
    let job = job_for(bench, variant, cfg);
    let started = std::time::Instant::now();
    let result = run_job(&job);
    let sim_ms = started.elapsed().as_secs_f64() * 1e3;
    let row = row_from_result(bench, variant, &job.config, &result)?;
    let out = result.outcome.as_ref().expect("row_from_result verified");
    let stream = out.obs.as_ref().expect("full observability was forced on");
    let started = std::time::Instant::now();
    let trace = dta_core::perfetto_trace(&job.config, &job.program, stream);
    let render_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok((row, sim_ms, render_ms, trace))
}

/// Runs a whole sweep grid through the shared service's batch executor
/// (the `--sweep-threads` pool), returning per-point outcomes in grid
/// order. Duplicate points — within the grid or across earlier
/// experiments — are served from the cache or coalesced.
pub fn sweep(points: &[SweepPoint]) -> Vec<Result<Row, String>> {
    let jobs: Vec<SimJob> = points
        .iter()
        .map(|p| job_for(p.bench, p.variant, p.cfg.clone()))
        .collect();
    let completions = service().run_grid(&jobs);
    points
        .iter()
        .zip(jobs.iter().zip(completions))
        .map(|(p, (job, done))| {
            let mut row = row_from_result(p.bench, p.variant, &job.config, &done.result)?;
            row.cache_hit = done.status.is_hit();
            Ok(row)
        })
        .collect()
}

/// [`sweep`], panicking on any failed point (the common case for
/// experiments whose grids must all complete).
pub fn sweep_ok(points: &[SweepPoint]) -> Vec<Row> {
    sweep(points)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

fn obs_label(mode: ObsMode) -> Option<String> {
    match mode {
        ObsMode::Off => None,
        ObsMode::Events => Some("events".into()),
        ObsMode::Metrics => Some("metrics".into()),
        ObsMode::All => Some("all".into()),
    }
}

/// Runs one benchmark configuration, verifying the result.
///
/// # Panics
///
/// On simulation failure or result mismatch.
pub fn run(bench: Bench, variant: Variant, cfg: SystemConfig) -> Row {
    try_run(bench, variant, cfg).unwrap_or_else(|e| panic!("{e}"))
}

fn row_from(bench: &Bench, variant: Variant, pes: u16, mem_latency: u64, stats: &RunStats) -> Row {
    Row {
        bench: bench.name(),
        variant: variant.label().to_string(),
        pes,
        mem_latency,
        cycles: stats.cycles,
        breakdown: stats.breakdown(),
        table5: stats.table5_row(),
        instances: stats.instances,
        dma_commands: stats.dma_commands,
        bus_utilisation: stats.bus_utilisation,
        sp_pf_cycles: stats.aggregate.sp_pf_cycles,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        verified: true,
        fault_rate_ppm: None,
        fault_seed: None,
        dma_retries: stats.dma_retries,
        dma_exhausted: stats.dma_exhausted,
        degraded_pes: stats.degraded_pes.len() as u64,
        fallback_instances: stats.fallback_instances,
        dse_crashes: stats.dse_crashes,
        failovers: stats.failovers,
        rehomed_fallocs: stats.rehomed_fallocs,
        resync_msgs: stats.resync_msgs,
        lse_crashes: stats.lse_crashes,
        evacuated_frames: stats.evacuated_frames,
        readmitted_instances: stats.readmitted_instances,
        killed_instances: stats.killed_instances,
        wall_ms: None,
        parallelism: None,
        obs_mode: None,
        obs_events: 0,
        obs_dropped: 0,
        overlap_cycles: 0,
        overlap_fraction: 0.0,
        sched: String::new(),
        visited_cycles: 0,
        pe_ticks: 0,
        skipped_ticks: 0,
        epochs: 0,
        merged_epochs: 0,
        shard_wall_us: Vec::new(),
        merge_wall_us: 0,
        pe_deliveries: 0,
        dse_deliveries: 0,
        mem_requests: 0,
        wake_heap_mean: 0.0,
        wake_heap_max: 0,
        memo_hits: 0,
        memo_misses: 0,
        memo_replayed_cycles: 0,
        memo_aborts: 0,
        job_key: String::new(),
        cache_hit: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_and_verifies() {
        for bench in Bench::quick_suite() {
            let row = run(bench, Variant::Baseline, SystemConfig::with_pes(2));
            assert!(row.verified);
            assert!(row.cycles > 0);
            assert_eq!(row.pes, 2);
            assert_eq!(row.job_key.len(), 32, "rows carry the JobKey hash");
        }
    }

    #[test]
    fn repeated_run_is_a_cache_hit() {
        let bench = Bench::Vecscale(64, 4);
        let cold = run(bench, Variant::Baseline, SystemConfig::with_pes(2));
        let warm = run(bench, Variant::Baseline, SystemConfig::with_pes(2));
        assert_eq!(cold.job_key, warm.job_key);
        assert!(warm.cache_hit, "second identical run must be served cached");
        assert_eq!(cold.cycles, warm.cycles);
    }

    #[test]
    fn names_match_paper_style() {
        assert_eq!(Bench::Mmul(32).name(), "mmul(32)");
        assert_eq!(Bench::Bitcnt(10_000).name(), "bitcnt(10000)");
    }
}
