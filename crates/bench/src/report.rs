//! Report rendering and persistence.

use crate::experiments::ExperimentResult;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Renders rows of cells as an aligned text table (first row = header).
pub fn text_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Prints an experiment to stdout and saves its JSON next to the text.
pub fn emit(result: &ExperimentResult, out_dir: Option<&Path>) -> std::io::Result<()> {
    println!("== {} ==", result.title);
    println!("{}", result.text);
    if let Some(dir) = out_dir {
        fs::create_dir_all(dir)?;
        let json = serde_json::to_string_pretty(result).expect("serialisable");
        fs::write(dir.join(format!("{}.json", result.id)), json)?;
        let mut f = fs::File::create(dir.join(format!("{}.txt", result.id)))?;
        writeln!(f, "== {} ==", result.title)?;
        writeln!(f, "{}", result.text)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = text_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["wide-cell".into(), "x".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3); // header, rule, one row
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        // Both data columns aligned under headers.
        let hpos = lines[0].find("long-header").unwrap();
        let xpos = lines[2].find('x').unwrap();
        assert_eq!(hpos, xpos);
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(text_table(&[]).is_empty());
    }
}
