//! Report rendering and persistence.

use crate::experiments::ExperimentResult;
use crate::runner::Row;
use dta_json::{Json, ToJson};
use std::fs;
use std::io::Write as _;
use std::path::Path;

impl ToJson for Row {
    fn to_json(&self) -> Json {
        let (total, loads, stores, reads, writes) = self.table5;
        Json::obj([
            ("bench", self.bench.to_json()),
            ("variant", self.variant.to_json()),
            ("pes", self.pes.to_json()),
            ("mem_latency", self.mem_latency.to_json()),
            ("cycles", self.cycles.to_json()),
            ("breakdown", self.breakdown.to_json()),
            ("table5", [total, loads, stores, reads, writes].to_json()),
            ("instances", self.instances.to_json()),
            ("dma_commands", self.dma_commands.to_json()),
            ("bus_utilisation", self.bus_utilisation.to_json()),
            ("sp_pf_cycles", self.sp_pf_cycles.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("verified", self.verified.to_json()),
            ("fault_rate_ppm", self.fault_rate_ppm.to_json()),
            ("fault_seed", self.fault_seed.to_json()),
            ("dma_retries", self.dma_retries.to_json()),
            ("dma_exhausted", self.dma_exhausted.to_json()),
            ("degraded_pes", self.degraded_pes.to_json()),
            ("fallback_instances", self.fallback_instances.to_json()),
            ("dse_crashes", self.dse_crashes.to_json()),
            ("failovers", self.failovers.to_json()),
            ("rehomed_fallocs", self.rehomed_fallocs.to_json()),
            ("resync_msgs", self.resync_msgs.to_json()),
            ("lse_crashes", self.lse_crashes.to_json()),
            ("evacuated_frames", self.evacuated_frames.to_json()),
            ("readmitted_instances", self.readmitted_instances.to_json()),
            ("killed_instances", self.killed_instances.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("parallelism", self.parallelism.to_json()),
            ("obs_mode", self.obs_mode.to_json()),
            ("obs_events", self.obs_events.to_json()),
            ("obs_dropped", self.obs_dropped.to_json()),
            ("overlap_cycles", self.overlap_cycles.to_json()),
            ("overlap_fraction", self.overlap_fraction.to_json()),
            ("sched", self.sched.to_json()),
            ("visited_cycles", self.visited_cycles.to_json()),
            ("pe_ticks", self.pe_ticks.to_json()),
            ("skipped_ticks", self.skipped_ticks.to_json()),
            ("epochs", self.epochs.to_json()),
            ("merged_epochs", self.merged_epochs.to_json()),
            ("shard_wall_us", self.shard_wall_us.to_json()),
            ("merge_wall_us", self.merge_wall_us.to_json()),
            ("pe_deliveries", self.pe_deliveries.to_json()),
            ("dse_deliveries", self.dse_deliveries.to_json()),
            ("mem_requests", self.mem_requests.to_json()),
            ("wake_heap_mean", self.wake_heap_mean.to_json()),
            ("wake_heap_max", self.wake_heap_max.to_json()),
            ("memo_hits", self.memo_hits.to_json()),
            ("memo_misses", self.memo_misses.to_json()),
            ("memo_replayed_cycles", self.memo_replayed_cycles.to_json()),
            ("memo_aborts", self.memo_aborts.to_json()),
            ("job_key", self.job_key.to_json()),
            ("cache_hit", self.cache_hit.to_json()),
        ])
    }
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", self.id.to_json()),
            ("title", self.title.to_json()),
            ("rows", self.rows.to_json()),
            ("text", self.text.to_json()),
        ];
        if let Some(health) = &self.health {
            fields.push(("health", health.clone()));
        }
        if let Some(profile) = &self.profile {
            fields.push(("profile", profile.clone()));
        }
        Json::obj(fields)
    }
}

/// Renders rows of cells as an aligned text table (first row = header).
pub fn text_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Prints an experiment to stdout and saves its JSON next to the text.
pub fn emit(result: &ExperimentResult, out_dir: Option<&Path>) -> std::io::Result<()> {
    println!("== {} ==", result.title);
    println!("{}", result.text);
    if let Some(dir) = out_dir {
        fs::create_dir_all(dir)?;
        let json = result.to_json().to_string_pretty();
        fs::write(dir.join(format!("{}.json", result.id)), json)?;
        let mut f = fs::File::create(dir.join(format!("{}.txt", result.id)))?;
        writeln!(f, "== {} ==", result.title)?;
        writeln!(f, "{}", result.text)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = text_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["wide-cell".into(), "x".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3); // header, rule, one row
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        // Both data columns aligned under headers.
        let hpos = lines[0].find("long-header").unwrap();
        let xpos = lines[2].find('x').unwrap();
        assert_eq!(hpos, xpos);
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(text_table(&[]).is_empty());
    }
}
