//! One function per paper table/figure (and per ablation).
//!
//! Every experiment returns its measured [`Row`]s plus a rendered text
//! table whose rows/series match what the paper reports; `EXPERIMENTS.md`
//! records paper-vs-measured for each.

use crate::report::text_table;
use crate::runner::{
    job_for, run, sweep, sweep_ok, try_run_timed, try_run_timed_stats, try_run_traced, Bench, Row,
    SweepPoint,
};
use dta_core::{MemoConfig, ObsConfig, Parallelism, SchedMode, StallCat, SystemConfig};
use dta_workloads::Variant;
use std::sync::OnceLock;

/// Process-wide default engine mode, applied to every experiment config
/// (set once by `repro --threads`; the `parallel` benchmark ignores it
/// because it pins each mode explicitly).
static DEFAULT_PARALLELISM: OnceLock<Parallelism> = OnceLock::new();

/// Sets the engine mode every experiment runs under. First call wins;
/// later calls are ignored.
pub fn set_default_parallelism(par: Parallelism) {
    let _ = DEFAULT_PARALLELISM.set(par);
}

/// Process-wide observability config, applied to every experiment run
/// (set once by `repro --obs` / `--metrics-interval`). Collection is
/// pure observation — every `RunStats` counter stays byte-identical —
/// so it composes freely with `--threads` and `--sweep-threads`.
static DEFAULT_OBS: OnceLock<ObsConfig> = OnceLock::new();

/// Sets the observability config every experiment runs under. First
/// call wins; later calls are ignored.
pub fn set_default_obs(obs: ObsConfig) {
    let _ = DEFAULT_OBS.set(obs);
}

/// Process-wide cycle scheduler, applied to every experiment config (set
/// once by `repro --sched`). Scheduling is a pure host-time optimisation
/// — results are bit-identical either way — so it composes freely with
/// the other defaults. The `speed` benchmark ignores it because it pins
/// both modes explicitly.
static DEFAULT_SCHED: OnceLock<SchedMode> = OnceLock::new();

/// Sets the cycle scheduler every experiment runs under. First call
/// wins; later calls are ignored.
pub fn set_default_sched(sched: SchedMode) {
    let _ = DEFAULT_SCHED.set(sched);
}

/// Process-wide memoization config, applied to every experiment run
/// (set once by `repro --memo`). Memoized timing replay is a pure
/// host-time optimisation — results are bit-identical either way — so
/// it composes freely with the other defaults. The `speed` benchmark
/// ignores it because it pins memo on/off explicitly.
static DEFAULT_MEMO: OnceLock<MemoConfig> = OnceLock::new();

/// Sets the memoization config every experiment runs under. First call
/// wins; later calls are ignored.
pub fn set_default_memo(memo: MemoConfig) {
    let _ = DEFAULT_MEMO.set(memo);
}

/// The result of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (`table5`, `fig6`, ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// All measured rows.
    pub rows: Vec<Row>,
    /// Rendered text report.
    pub text: String,
    /// Service supervision counters ([`dta_serve::ServiceHealth`] as
    /// JSON) for experiments that own a service; `None` elsewhere.
    pub health: Option<dta_json::Json>,
    /// Structured profiling payload (`profile` experiment only):
    /// attribution tables, critical-path summaries and the host engine
    /// profile, one entry per run point.
    pub profile: Option<dta_json::Json>,
}

fn pes8(suite_pes: u16) -> SystemConfig {
    let mut cfg = SystemConfig::with_pes(suite_pes);
    if let Some(&par) = DEFAULT_PARALLELISM.get() {
        cfg.parallelism = par;
    }
    if let Some(&obs) = DEFAULT_OBS.get() {
        cfg.obs = obs;
    }
    if let Some(&sched) = DEFAULT_SCHED.get() {
        cfg.sched = sched;
    }
    if let Some(&memo) = DEFAULT_MEMO.get() {
        cfg.memo = memo;
    }
    cfg
}

/// Variants reported in the figures: the paper's baseline and hand-coded
/// prefetch, plus our automatic compiler as an extension row.
const VARIANTS: [Variant; 3] = [
    Variant::Baseline,
    Variant::HandPrefetch,
    Variant::AutoPrefetch,
];

/// Tables 2-4: the simulated platform's parameters.
pub fn config() -> ExperimentResult {
    let cfg = SystemConfig::paper_default();
    let mut text = cfg.to_tables();
    text.push_str(
        "Table 3: DMA command operands\n\
         \x20 LS address | MEM address | Data size | Tag ID\n\
         \x20 (see dta_isa::Instr::DmaGet / DmaGetStrided / DmaPut)\n",
    );
    ExperimentResult {
        health: None,
        profile: None,
        id: "config".into(),
        title: "Tables 2-4: platform parameters".into(),
        rows: Vec::new(),
        text,
    }
}

/// Table 5: dynamic instruction counts of the original-DTA baselines.
pub fn table5(suite: &[Bench], pes: u16) -> ExperimentResult {
    // Paper values for the 10000/32/32 sizes, for side-by-side reading.
    let paper: &[(&str, [u64; 5])] = &[
        (
            "bitcnt(10000)",
            [9_415_559, 806_593, 806_593, 192_366, 2_814],
        ),
        ("mmul(32)", [341_422, 73, 73, 65_536, 1_024]),
        ("zoom(32)", [353_425, 4_672, 4_672, 32_768, 16_384]),
    ];
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "total".into(),
        "LOAD".into(),
        "STORE".into(),
        "READ".into(),
        "WRITE".into(),
        "paper(total/LOAD/STORE/READ/WRITE)".into(),
    ]];
    // One independent job per benchmark — submitted as one grid to the
    // shared service (input order preserved).
    let points: Vec<SweepPoint> = suite
        .iter()
        .map(|&bench| SweepPoint::new(bench, Variant::Baseline, pes8(pes)))
        .collect();
    for row in sweep_ok(&points) {
        let (t, l, s, r, w) = row.table5;
        let paper_col = paper
            .iter()
            .find(|(n, _)| *n == row.bench)
            .map(|(_, v)| format!("{}/{}/{}/{}/{}", v[0], v[1], v[2], v[3], v[4]))
            .unwrap_or_else(|| "-".into());
        table.push(vec![
            row.bench.clone(),
            t.to_string(),
            l.to_string(),
            s.to_string(),
            r.to_string(),
            w.to_string(),
            paper_col,
        ]);
        rows.push(row);
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "table5".into(),
        title: "Table 5: dynamic instruction counts (original DTA)".into(),
        text: text_table(&table),
        rows,
    }
}

/// Figure 5: average SPU execution-time breakdown, without and with
/// prefetching.
pub fn fig5(suite: &[Bench], pes: u16) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "variant".into(),
        "Working%".into(),
        "Idle%".into(),
        "Mem%".into(),
        "LS%".into(),
        "LSE%".into(),
        "Prefetch%".into(),
    ]];
    let points: Vec<SweepPoint> = suite
        .iter()
        .flat_map(|&bench| {
            VARIANTS
                .iter()
                .map(move |&v| SweepPoint::new(bench, v, pes8(pes)))
        })
        .collect();
    for row in sweep_ok(&points) {
        table.push(vec![
            row.bench.clone(),
            row.variant.clone(),
            format!("{:5.1}", row.pct(StallCat::Working)),
            format!("{:5.1}", row.pct(StallCat::Idle)),
            format!("{:5.1}", row.pct(StallCat::MemStall)),
            format!("{:5.1}", row.pct(StallCat::LsStall)),
            format!("{:5.1}", row.pct(StallCat::LseStall)),
            format!("{:5.1}", row.pct(StallCat::Prefetch)),
        ]);
        rows.push(row);
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "fig5".into(),
        title: "Figure 5: SPU execution-time breakdown (no-prefetch vs prefetch)".into(),
        text: text_table(&table),
        rows,
    }
}

/// Figures 6/7/8: execution time and scalability across 1/2/4/8 PEs.
pub fn fig_exec_scalability(id: &str, bench: Bench, max_pes: u16) -> ExperimentResult {
    let pes_list: Vec<u16> = [1u16, 2, 4, 8]
        .into_iter()
        .filter(|&p| p <= max_pes)
        .collect();
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "PEs".to_string(),
        "baseline cycles".into(),
        "prefetch-hand cycles".into(),
        "prefetch-auto cycles".into(),
        "speedup(hand)".into(),
        "scal(base)".into(),
        "scal(hand)".into(),
    ]];
    // The grid points are independent jobs — one grid submission to the
    // shared service (input order preserved, so the report is identical
    // to the sequential sweep).
    let grid: Vec<(u16, Variant)> = pes_list
        .iter()
        .flat_map(|&pes| VARIANTS.iter().map(move |&v| (pes, v)))
        .collect();
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&(pes, v)| SweepPoint::new(bench, v, pes8(pes)))
        .collect();
    let results = sweep_ok(&points);
    let mut per_variant: Vec<Vec<Row>> = vec![Vec::new(); VARIANTS.len()];
    for ((_, variant), row) in grid.iter().zip(results) {
        let vi = VARIANTS.iter().position(|v| v == variant).expect("grid");
        per_variant[vi].push(row.clone());
        rows.push(row);
    }
    for (i, &pes) in pes_list.iter().enumerate() {
        let base = per_variant[0][i].cycles;
        let hand = per_variant[1][i].cycles;
        let auto = per_variant[2][i].cycles;
        table.push(vec![
            pes.to_string(),
            base.to_string(),
            hand.to_string(),
            auto.to_string(),
            format!("{:.2}x", base as f64 / hand as f64),
            format!("{:.2}", per_variant[0][0].cycles as f64 / base as f64),
            format!("{:.2}", per_variant[1][0].cycles as f64 / hand as f64),
        ]);
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: id.into(),
        title: format!("{}: execution time & scalability for {}", id, bench.name()),
        text: text_table(&table),
        rows,
    }
}

/// Figure 9: pipeline usage with and without prefetching.
pub fn fig9(suite: &[Bench], pes: u16) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "variant".into(),
        "pipeline usage".into(),
        "IPC".into(),
    ]];
    let points: Vec<SweepPoint> = suite
        .iter()
        .flat_map(|&bench| {
            VARIANTS
                .iter()
                .map(move |&v| SweepPoint::new(bench, v, pes8(pes)))
        })
        .collect();
    for row in sweep_ok(&points) {
        table.push(vec![
            row.bench.clone(),
            row.variant.clone(),
            format!("{:.3}", row.breakdown.pipeline_usage),
            format!("{:.3}", row.breakdown.ipc),
        ]);
        rows.push(row);
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "fig9".into(),
        title: "Figure 9: pipeline usage (no-prefetch vs prefetch)".into(),
        text: text_table(&table),
        rows,
    }
}

/// §4.3 latency-1 experiment: every memory latency set to one cycle (the
/// all-hits bound); prefetching should barely help, and bitcnt should
/// *lose* to its own prefetch overhead.
pub fn lat1(suite: &[Bench], pes: u16) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "baseline cycles".into(),
        "prefetch cycles".into(),
        "speedup@lat1".into(),
        "speedup@lat150".into(),
    ]];
    // Four independent runs per benchmark: {baseline, prefetch} at
    // latency 1 and at the paper latency.
    let grid: Vec<(Bench, Variant, bool)> = suite
        .iter()
        .flat_map(|&bench| {
            [
                (bench, Variant::Baseline, true),
                (bench, Variant::HandPrefetch, true),
                (bench, Variant::Baseline, false),
                (bench, Variant::HandPrefetch, false),
            ]
        })
        .collect();
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&(bench, variant, lat1)| {
            let cfg = if lat1 {
                pes8(pes).latency_one()
            } else {
                pes8(pes)
            };
            SweepPoint::new(bench, variant, cfg)
        })
        .collect();
    let results = sweep_ok(&points);
    for chunk in results.chunks_exact(4) {
        let [b1, p1, b150, p150] = chunk else {
            unreachable!()
        };
        table.push(vec![
            b1.bench.clone(),
            b1.cycles.to_string(),
            p1.cycles.to_string(),
            format!("{:.2}x", b1.cycles as f64 / p1.cycles as f64),
            format!("{:.2}x", b150.cycles as f64 / p150.cycles as f64),
        ]);
        rows.extend(chunk.iter().cloned());
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "lat1".into(),
        title: "§4.3: all memory latencies = 1 cycle (always-hit bound)".into(),
        text: text_table(&table),
        rows,
    }
}

/// Ablation A1: strided DMA as one transaction vs per-element split
/// transactions (paper §3's rejected alternative).
pub fn ablate_split(n: usize, pes: u16) -> ExperimentResult {
    let bench = Bench::Colsum(n);
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "configuration".to_string(),
        "cycles".into(),
        "vs single-transaction".into(),
    ]];
    let grid = [
        (Variant::Baseline, false),
        (Variant::HandPrefetch, false),
        (Variant::HandPrefetch, true),
    ];
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&(variant, split)| {
            let mut cfg = pes8(pes);
            cfg.dma_split_transactions = split;
            SweepPoint::new(bench, variant, cfg)
        })
        .collect();
    let results = sweep_ok(&points);
    let [base, single, split] = results.try_into().map_err(|_| ()).expect("three runs");
    for (label, row) in [
        ("baseline (READs)", &base),
        ("DMA, one transaction", &single),
        ("DMA, split per element", &split),
    ] {
        table.push(vec![
            label.to_string(),
            row.cycles.to_string(),
            format!("{:.2}x", row.cycles as f64 / single.cycles as f64),
        ]);
    }
    rows.extend([base, single, split]);
    ExperimentResult {
        health: None,
        profile: None,
        id: "ablate-split".into(),
        title: format!("Ablation: strided DMA vs split transactions, colsum({n})"),
        text: text_table(&table),
        rows,
    }
}

/// Ablation A2: virtual frame pointers (paper §4.3: "a possible solution
/// [to bitcnt's LSE stalls] is to use virtual frame pointers, but we did
/// not include this feature"). bitcnt's wave-bounded unfolding respects
/// the default 64-frame pool, so the sweep also shrinks the physical
/// capacity to make frame pressure bind — VFP then removes the deferred
/// FALLOCs entirely.
pub fn ablate_vfp(n: usize, pes: u16) -> ExperimentResult {
    let bench = Bench::Bitcnt(n);
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "frames/PE".to_string(),
        "virtual".into(),
        "cycles".into(),
        "LSE stall %".into(),
        "Idle %".into(),
    ]];
    let grid: Vec<(u32, bool)> = [2u32, 4, 64]
        .into_iter()
        .flat_map(|capacity| [false, true].map(|vfp| (capacity, vfp)))
        .collect();
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&(capacity, vfp)| {
            let mut cfg = pes8(pes);
            cfg.frame_capacity = capacity;
            cfg.virtual_frames = vfp;
            SweepPoint::new(bench, Variant::Baseline, cfg)
        })
        .collect();
    let outcomes = sweep(&points);
    {
        for (&(capacity, vfp), outcome) in grid.iter().zip(outcomes) {
            match outcome {
                Ok(row) => {
                    table.push(vec![
                        capacity.to_string(),
                        if vfp { "yes" } else { "no" }.into(),
                        row.cycles.to_string(),
                        format!("{:.1}", row.pct(StallCat::LseStall)),
                        format!("{:.1}", row.pct(StallCat::Idle)),
                    ]);
                    rows.push(row);
                }
                Err(e) => {
                    // Under-provisioned frame pools without VFP can
                    // genuinely deadlock a frame-based dataflow machine —
                    // that *is* the result.
                    let status = if e.contains("deadlock") {
                        "DEADLOCK".to_string()
                    } else {
                        e.clone()
                    };
                    table.push(vec![
                        capacity.to_string(),
                        if vfp { "yes" } else { "no" }.into(),
                        status,
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "ablate-vfp".into(),
        title: format!("Ablation: virtual frame pointers x frame capacity, bitcnt({n})"),
        text: text_table(&table),
        rows,
    }
}

/// Ablation A3: hardware sensitivity — bus count and MFC queue depth
/// under the prefetched mmul.
pub fn ablate_hw(n: usize, pes: u16) -> ExperimentResult {
    let bench = Bench::Mmul(n);
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "buses".to_string(),
        "MFC queue".into(),
        "cycles".into(),
        "bus util".into(),
    ]];
    let grid: Vec<(usize, usize)> = [1usize, 2, 4]
        .into_iter()
        .flat_map(|buses| [2usize, 16].map(|queue| (buses, queue)))
        .collect();
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&(buses, queue)| {
            let mut cfg = pes8(pes);
            cfg.buses = buses;
            cfg.mfc.queue_capacity = queue;
            SweepPoint::new(bench, Variant::HandPrefetch, cfg)
        })
        .collect();
    let results = sweep_ok(&points);
    for (&(buses, queue), row) in grid.iter().zip(results) {
        table.push(vec![
            buses.to_string(),
            queue.to_string(),
            row.cycles.to_string(),
            format!("{:.3}", row.bus_utilisation),
        ]);
        rows.push(row);
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "ablate-hw".into(),
        title: format!("Ablation: bus count × MFC queue depth, mmul({n}) prefetched"),
        text: text_table(&table),
        rows,
    }
}

/// Extension E1: does prefetching "almost eliminate the need for caches"
/// (paper §4.3)? Adds the cache module the paper's simulator lacked and
/// compares baseline, baseline+cache, prefetch, and prefetch+cache.
pub fn ext_cache(mmul_n: usize, zoom_n: usize, pes: u16) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "configuration".into(),
        "cycles".into(),
        "hit rate".into(),
    ]];
    let configs = [
        ("original DTA", Variant::Baseline, false),
        ("original DTA + cache", Variant::Baseline, true),
        ("DMA prefetch", Variant::HandPrefetch, false),
        ("DMA prefetch + cache", Variant::HandPrefetch, true),
    ];
    let grid: Vec<(Bench, &str, Variant, bool)> = [Bench::Mmul(mmul_n), Bench::Zoom(zoom_n)]
        .into_iter()
        .flat_map(|bench| {
            configs
                .iter()
                .map(move |&(label, variant, cache)| (bench, label, variant, cache))
        })
        .collect();
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&(bench, _, variant, cache)| {
            let mut cfg = pes8(pes);
            if cache {
                cfg.cache = Some(dta_mem::CacheParams::default());
            }
            SweepPoint::new(bench, variant, cfg)
        })
        .collect();
    let results = sweep_ok(&points);
    for (&(_, label, _, _), row) in grid.iter().zip(results) {
        let hits = row.cache_hits + row.cache_misses;
        table.push(vec![
            row.bench.clone(),
            label.to_string(),
            row.cycles.to_string(),
            if hits == 0 {
                "-".into()
            } else {
                format!("{:.2}", row.cache_hits as f64 / hits as f64)
            },
        ]);
        rows.push(row);
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "ext-cache".into(),
        title: "Extension: DMA prefetch vs a data cache (paper §4.3's missing module)".into(),
        text: text_table(&table),
        rows,
    }
}

/// Extension E2: run PF blocks on the LSE's SP pipeline, overlapped with
/// execution — the DTA-C capability the paper notes CellDTA lacks.
pub fn ext_spxp(suite: &[Bench], pes: u16) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "SP/XP".into(),
        "cycles".into(),
        "Prefetch%".into(),
        "SP cycles".into(),
    ]];
    let grid: Vec<(Bench, bool)> = suite
        .iter()
        .flat_map(|&bench| [false, true].map(|overlap| (bench, overlap)))
        .collect();
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&(bench, overlap)| {
            let mut cfg = pes8(pes);
            cfg.sp_pf_overlap = overlap;
            SweepPoint::new(bench, Variant::HandPrefetch, cfg)
        })
        .collect();
    let results = sweep_ok(&points);
    for (&(_, overlap), row) in grid.iter().zip(results) {
        table.push(vec![
            row.bench.clone(),
            if overlap { "on" } else { "off (CellDTA)" }.into(),
            row.cycles.to_string(),
            format!("{:.1}", row.pct(StallCat::Prefetch)),
            row.sp_pf_cycles.to_string(),
        ]);
        rows.push(row);
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "ext-spxp".into(),
        title: "Extension: PF blocks on the LSE's SP pipeline (DTA-C overlap)".into(),
        text: text_table(&table),
        rows,
    }
}

/// Extension E3: whole-structure prefetch for bitcnt's bounded table
/// lookups — the paper's §4.3: "we do not decouple all the global access,
/// but only a portion of them (this shall be considered in the next
/// releases of our simulator)". This is that next release.
pub fn ext_wholeobj(n: usize, pes: u16) -> ExperimentResult {
    use dta_compiler::{prefetch_program, PlanOptions, TransformOptions};
    use dta_core::SimJob;
    use dta_workloads::bitcnt;
    use std::sync::Arc;

    let mut rows = Vec::new();
    let mut table = vec![vec![
        "configuration".to_string(),
        "cycles".into(),
        "Mem%".into(),
        "READs left".into(),
        "speedup vs baseline".into(),
    ]];
    let points = [
        SweepPoint::new(Bench::Bitcnt(n), Variant::Baseline, pes8(pes)),
        SweepPoint::new(Bench::Bitcnt(n), Variant::AutoPrefetch, pes8(pes)),
    ];
    let mut results = sweep_ok(&points);
    let auto_row = results.pop().expect("two runs");
    let base_row = results.pop().expect("two runs");

    // The "next release": auto-prefetch with whole-object fetching on.
    // A custom program is still just a job value — submit it to the
    // shared service like any benchmark point.
    let wp = bitcnt::build(n, Variant::Baseline);
    let opts = TransformOptions {
        plan: PlanOptions {
            whole_object: true,
            ..PlanOptions::default()
        },
    };
    let (program, _) = prefetch_program(&wp.program, &opts);
    let job = SimJob::new(Arc::new(program), wp.args.clone(), pes8(pes));
    let done = crate::runner::service().submit(&job);
    let out = done
        .result
        .outcome
        .as_ref()
        .expect("whole-object bitcnt runs");
    bitcnt::verify(&out.globals, n).expect("whole-object bitcnt verifies");
    let stats = &out.stats;

    let entries = [
        (
            "original DTA",
            base_row.cycles,
            base_row.pct(StallCat::MemStall),
            base_row.table5.3,
        ),
        (
            "prefetch (paper: partial)",
            auto_row.cycles,
            auto_row.pct(StallCat::MemStall),
            auto_row.table5.3,
        ),
        (
            "prefetch + whole-object tables",
            stats.cycles,
            stats.breakdown().pct(StallCat::MemStall),
            stats.aggregate.reads,
        ),
    ];
    for (label, cycles, mem, reads) in entries {
        table.push(vec![
            label.to_string(),
            cycles.to_string(),
            format!("{mem:.1}"),
            reads.to_string(),
            format!("{:.2}x", base_row.cycles as f64 / cycles as f64),
        ]);
    }
    rows.extend([base_row, auto_row]);
    ExperimentResult {
        health: None,
        profile: None,
        id: "ext-wholeobj".into(),
        title: format!("Extension: whole-structure table prefetch, bitcnt({n})"),
        text: text_table(&table),
        rows,
    }
}

/// Engine benchmark: host wall-clock of the simulator itself, sequential
/// oracle vs the epoch-sharded engine at several thread counts. Written
/// as `BENCH_parallel.json` so successive PRs can track simulator
/// performance. Also cross-checks determinism: every mode must report
/// identical cycle counts.
pub fn parallel_bench(mmul_n: usize, pes: u16) -> ExperimentResult {
    use dta_core::Parallelism;

    let bench = Bench::Mmul(mmul_n);
    let modes: [(&str, Parallelism); 4] = [
        ("sequential", Parallelism::Off),
        ("threads(2)", Parallelism::Threads(2)),
        ("threads(4)", Parallelism::Threads(4)),
        ("auto", Parallelism::Auto),
    ];
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "engine".to_string(),
        "variant".into(),
        "cycles".into(),
        "wall ms".into(),
        "speedup".into(),
    ]];
    for variant in [Variant::Baseline, Variant::HandPrefetch] {
        let mut seq = None;
        for (label, par) in modes {
            let mut cfg = SystemConfig::with_pes(pes);
            cfg.parallelism = par;
            let (mut row, ms) =
                try_run_timed(bench, variant, cfg).unwrap_or_else(|e| panic!("{e}"));
            let (seq_ms, seq_cycles) = *seq.get_or_insert((ms, row.cycles));
            assert_eq!(
                row.cycles, seq_cycles,
                "{label} diverged from the sequential oracle"
            );
            row.wall_ms = Some(ms);
            row.parallelism = Some(label.to_string());
            table.push(vec![
                label.to_string(),
                row.variant.clone(),
                row.cycles.to_string(),
                format!("{ms:.1}"),
                format!("{:.2}x", seq_ms / ms),
            ]);
            rows.push(row);
        }
    }
    let mut text = text_table(&table);
    text.push_str(&format!("host parallelism: {host} core(s)\n"));
    if host == 1 {
        text.push_str(
            "(single-core host: the engine runs every shard inline on one \
             thread, so thread speedup is structurally ~1.0x here; run on a \
             multi-core host to measure parallel speedup)\n",
        );
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "BENCH_parallel".into(),
        title: format!("Engine wall-clock: sequential vs epoch-sharded, mmul({mmul_n}) {pes} PEs"),
        text,
        rows,
    }
}

/// Scheduler benchmark: host wall-clock of the dense cycle loop vs the
/// event-driven fast-forward scheduler vs fast-forward with instance
/// memoization, on the paper suite plus the DMA-dominated `gather`
/// stress. Written as `BENCH_speed.json` so successive PRs can track
/// simulator performance. Every triple must report a byte-identical
/// `RunStats` — fast-forward and memoized replay are pure host-time
/// optimisations — and the table carries the skipped-tick, epoch-merge
/// and memo counters that explain the speedups.
pub fn speed_bench(cases: &[(Bench, Variant, u16)]) -> ExperimentResult {
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "variant".into(),
        "pes".into(),
        "sched".into(),
        "cycles".into(),
        "visited".into(),
        "PE ticks".into(),
        "skipped".into(),
        "merged epochs".into(),
        "memo hits".into(),
        "replayed cyc".into(),
        "sim ms".into(),
        "Mcyc/s".into(),
        "speedup".into(),
    ]];
    for &(bench, variant, pes) in cases {
        let mut dense = None;
        for (sched, memo) in [
            (SchedMode::Dense, false),
            (SchedMode::FastForward, false),
            (SchedMode::FastForward, true),
        ] {
            let mut cfg = pes8(pes);
            cfg.sched = sched;
            if memo {
                cfg.memo = MemoConfig::on();
            }
            let (mut row, ms, stats) =
                try_run_timed_stats(bench, variant, cfg).unwrap_or_else(|e| panic!("{e}"));
            let (base_ms, base_stats) = dense.get_or_insert((ms, stats.clone()));
            // The hard invariance gate: every counter, per-PE breakdown
            // and fault tally of the simulated run must be bit-identical
            // to the dense interpreter's.
            assert_eq!(
                &stats,
                base_stats,
                "{} [{}]: {} changed the simulation",
                bench.name(),
                row.variant,
                if memo {
                    "memoized replay"
                } else {
                    "fast-forward"
                },
            );
            let base_ms = *base_ms;
            row.wall_ms = Some(ms);
            if memo {
                row.sched.push_str("+memo");
            }
            table.push(vec![
                row.bench.clone(),
                row.variant.clone(),
                row.pes.to_string(),
                row.sched.clone(),
                row.cycles.to_string(),
                row.visited_cycles.to_string(),
                row.pe_ticks.to_string(),
                row.skipped_ticks.to_string(),
                row.merged_epochs.to_string(),
                row.memo_hits.to_string(),
                row.memo_replayed_cycles.to_string(),
                format!("{ms:.1}"),
                format!("{:.2}", row.cycles as f64 / ms / 1e3),
                format!("{:.2}x", base_ms / ms),
            ]);
            rows.push(row);
        }
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "BENCH_speed".into(),
        title: "Scheduler wall-clock: dense loop vs fast-forward vs memoized replay".into(),
        text: text_table(&table),
        rows,
    }
}

/// Fault-injection sweep (robustness PR): completion rate, retry cost,
/// degradation, and cycle overhead vs an escalating injected fault rate.
/// Written as `BENCH_faults.json` so successive PRs can track recovery
/// behaviour. `rate` drives transient DMA failures directly; message
/// faults and FALLOC denials ride along at a fraction of it.
pub fn faults_bench(suite: &[Bench], pes: u16, seed: u64, rates: &[u32]) -> ExperimentResult {
    use dta_core::FaultPlan;

    const RUNS_PER_RATE: u64 = 3;
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "rate ppm".into(),
        "completed".into(),
        "mean retries".into(),
        "exhausted".into(),
        "degraded PEs".into(),
        "fallbacks".into(),
        "cycle overhead".into(),
    ]];
    for &bench in suite {
        let clean = run(bench, Variant::HandPrefetch, pes8(pes));
        // All (rate, repetition) points are independent seeded jobs —
        // one grid submission to the shared service.
        let grid: Vec<(u32, u64)> = rates
            .iter()
            .flat_map(|&rate| (0..RUNS_PER_RATE).map(move |k| (rate, k)))
            .collect();
        let points: Vec<SweepPoint> = grid
            .iter()
            .map(|&(rate, k)| {
                let mut plan =
                    FaultPlan::seeded(seed.wrapping_add(k).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
                plan.dma_fail_ppm = rate;
                plan.msg_drop_ppm = rate / 10;
                plan.msg_dup_ppm = rate / 10;
                plan.msg_delay_ppm = rate / 10;
                plan.falloc_deny_ppm = rate / 4;
                let mut cfg = pes8(pes);
                cfg.faults = Some(plan);
                SweepPoint::new(bench, Variant::HandPrefetch, cfg)
            })
            .collect();
        let outcomes: Vec<Result<Row, String>> = points
            .iter()
            .zip(sweep(&points))
            .map(|(p, outcome)| {
                outcome.map(|mut row| {
                    let plan = p.cfg.faults.as_ref().expect("seeded point");
                    row.fault_rate_ppm = Some(plan.dma_fail_ppm);
                    row.fault_seed = Some(plan.seed);
                    row
                })
            })
            .collect();
        for (ri, &rate) in rates.iter().enumerate() {
            let at_rate = &outcomes[ri * RUNS_PER_RATE as usize..][..RUNS_PER_RATE as usize];
            let mut completed = 0u64;
            let (mut retries, mut exhausted, mut degraded, mut fallbacks, mut cycles) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for outcome in at_rate {
                match outcome {
                    Ok(row) => {
                        completed += 1;
                        retries += row.dma_retries;
                        exhausted += row.dma_exhausted;
                        degraded += row.degraded_pes;
                        fallbacks += row.fallback_instances;
                        cycles += row.cycles;
                        rows.push(row.clone());
                    }
                    Err(e) => eprintln!("  [faults] run failed (counted as incomplete): {e}"),
                }
            }
            let m = completed.max(1);
            table.push(vec![
                bench.name(),
                rate.to_string(),
                format!("{completed}/{RUNS_PER_RATE}"),
                format!("{:.1}", retries as f64 / m as f64),
                exhausted.to_string(),
                format!("{:.1}", degraded as f64 / m as f64),
                format!("{:.1}", fallbacks as f64 / m as f64),
                format!("{:.2}x", (cycles as f64 / m as f64) / clean.cycles as f64),
            ]);
        }
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "BENCH_faults".into(),
        title: "Fault-injection sweep: recovery cost and degradation vs rate".into(),
        text: text_table(&table),
        rows,
    }
}

/// Compares capacity-aware vs the historical lowest-id DSE successor
/// election on the resolved schedule of `plan` — a pure function of the
/// plan, no simulation. Returns `(handovers, diverged)` over every
/// planned DSE outage sampled at its detection cycle, and panics if the
/// capacity-aware choice ever lands on a peer with *fewer* planned free
/// frames than the lowest-id choice (the invariant the A/B certifies).
fn election_ab(plan: &dta_core::FaultPlan, cfg: &SystemConfig) -> (u64, u64) {
    use dta_core::fault::FailoverSchedule;
    let Some(s) = FailoverSchedule::from_plan(
        plan,
        cfg.nodes,
        cfg.pes_per_node,
        cfg.frame_capacity,
        cfg.msg_latency,
    ) else {
        return (0, 0);
    };
    let (mut handovers, mut diverged) = (0u64, 0u64);
    for node in 0..cfg.nodes {
        let Some(o) = s.outage(node) else { continue };
        let t = o.detect_at;
        let (Some(a), Some(l)) = (s.arbiter(node, t), s.lowest_id_arbiter(node, t)) else {
            continue;
        };
        handovers += 1;
        if a != l {
            diverged += 1;
        }
        assert!(
            s.planned_node_capacity(a, t) >= s.planned_node_capacity(l, t),
            "capacity-aware election re-homed node {node} to a poorer peer \
             ({a} over {l})"
        );
    }
    (handovers, diverged)
}

/// DSE crash/failover sweep (failover PR): completion rate, re-homed
/// FALLOC traffic, resync cost and cycle overhead vs an escalating
/// per-node crash probability, with and without planned restart. The
/// platform is split into two nodes so a crashed DSE has a peer to fail
/// over to. The robustness PR added a second grid over LSE crash rates
/// (`lse_rates`): completion rate, evacuation/re-admission/kill counts
/// and cycle overhead per rate, alone and combined with DSE crashes,
/// plus a capacity-aware-vs-lowest-id election A/B sampled from the
/// resolved schedule. Written as `BENCH_failover.json` so successive PRs
/// can track recovery behaviour.
pub fn failover_bench(
    suite: &[Bench],
    pes: u16,
    seed: u64,
    rates: &[u32],
    lse_rates: &[u32],
) -> ExperimentResult {
    use dta_core::FaultPlan;

    const RUNS_PER_RATE: u64 = 3;
    let two_nodes = |pes: u16| {
        let mut cfg = pes8(pes);
        cfg.nodes = 2;
        cfg.pes_per_node = (pes / 2).max(1);
        cfg
    };
    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "crash ppm".into(),
        "restart".into(),
        "completed".into(),
        "crashes".into(),
        "failovers".into(),
        "rehomed".into(),
        "resyncs".into(),
        "cycle overhead".into(),
    ]];
    for &bench in suite {
        let clean = run(bench, Variant::HandPrefetch, two_nodes(pes));
        let grid: Vec<(u32, bool, u64)> = rates
            .iter()
            .flat_map(|&rate| {
                [false, true]
                    .into_iter()
                    .flat_map(move |restart| (0..RUNS_PER_RATE).map(move |k| (rate, restart, k)))
            })
            .collect();
        let points: Vec<SweepPoint> = grid
            .iter()
            .map(|&(rate, restart, k)| {
                let mut plan =
                    FaultPlan::seeded(seed.wrapping_add(k).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
                plan.dse_crash_ppm = rate;
                plan.dse_crash_window = 20_000;
                plan.dse_failover_detect = 1_000;
                plan.dse_restart_after = if restart { 10_000 } else { 0 };
                let mut cfg = two_nodes(pes);
                cfg.faults = Some(plan);
                SweepPoint::new(bench, Variant::HandPrefetch, cfg)
            })
            .collect();
        let outcomes: Vec<Result<Row, String>> = points
            .iter()
            .zip(sweep(&points))
            .map(|(p, outcome)| {
                outcome.map(|mut row| {
                    let plan = p.cfg.faults.as_ref().expect("seeded point");
                    row.fault_rate_ppm = Some(plan.dse_crash_ppm);
                    row.fault_seed = Some(plan.seed);
                    row
                })
            })
            .collect();
        for (gi, chunk) in outcomes.chunks(RUNS_PER_RATE as usize).enumerate() {
            let (rate, restart, _) = grid[gi * RUNS_PER_RATE as usize];
            let mut completed = 0u64;
            let (mut crashes, mut failovers, mut rehomed, mut resyncs, mut cycles) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for outcome in chunk {
                match outcome {
                    Ok(row) => {
                        completed += 1;
                        crashes += row.dse_crashes;
                        failovers += row.failovers;
                        rehomed += row.rehomed_fallocs;
                        resyncs += row.resync_msgs;
                        cycles += row.cycles;
                        rows.push(row.clone());
                    }
                    // Total loss without restart legitimately ends in a
                    // typed watchdog error — that *is* the data point.
                    Err(e) => eprintln!("  [failover] run failed (counted as incomplete): {e}"),
                }
            }
            let m = completed.max(1);
            table.push(vec![
                bench.name(),
                rate.to_string(),
                if restart { "yes" } else { "no" }.into(),
                format!("{completed}/{RUNS_PER_RATE}"),
                format!("{:.1}", crashes as f64 / m as f64),
                format!("{:.1}", failovers as f64 / m as f64),
                format!("{:.1}", rehomed as f64 / m as f64),
                format!("{:.1}", resyncs as f64 / m as f64),
                format!("{:.2}x", (cycles as f64 / m as f64) / clean.cycles as f64),
            ]);
        }
    }
    // LSE crash grid (robustness PR): evacuation/re-admission economics
    // per rate, alone and combined with a likely DSE crash. The A/B
    // column certifies the capacity-aware successor election against the
    // historical lowest-id rule on the same resolved schedule.
    let mut lse_table = vec![vec![
        "benchmark".to_string(),
        "lse ppm".into(),
        "dse crash".into(),
        "completed".into(),
        "lse crashes".into(),
        "evacuated".into(),
        "readmitted".into(),
        "killed".into(),
        "cycle overhead".into(),
        "cap-aware A/B".into(),
    ]];
    for &bench in suite {
        let clean = run(bench, Variant::HandPrefetch, two_nodes(pes));
        let grid: Vec<(u32, bool, u64)> = lse_rates
            .iter()
            .flat_map(|&rate| {
                [false, true]
                    .into_iter()
                    .flat_map(move |with_dse| (0..RUNS_PER_RATE).map(move |k| (rate, with_dse, k)))
            })
            .collect();
        let mk_plan = |rate: u32, with_dse: bool, k: u64| {
            let mut plan =
                FaultPlan::seeded(seed.wrapping_add(k).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            plan.lse_crash_ppm = rate;
            plan.lse_crash_window = 20_000;
            plan.lse_detect = 1_000;
            plan.lse_restart_after = 10_000;
            if with_dse {
                plan.dse_crash_ppm = 500_000;
                plan.dse_crash_window = 20_000;
                plan.dse_failover_detect = 1_000;
                plan.dse_restart_after = 10_000;
            }
            plan
        };
        let points: Vec<SweepPoint> = grid
            .iter()
            .map(|&(rate, with_dse, k)| {
                let mut cfg = two_nodes(pes);
                cfg.faults = Some(mk_plan(rate, with_dse, k));
                SweepPoint::new(bench, Variant::HandPrefetch, cfg)
            })
            .collect();
        let outcomes: Vec<Result<Row, String>> = points
            .iter()
            .zip(sweep(&points))
            .map(|(p, outcome)| {
                outcome.map(|mut row| {
                    let plan = p.cfg.faults.as_ref().expect("seeded point");
                    row.fault_rate_ppm = Some(plan.lse_crash_ppm);
                    row.fault_seed = Some(plan.seed);
                    row
                })
            })
            .collect();
        for (gi, chunk) in outcomes.chunks(RUNS_PER_RATE as usize).enumerate() {
            let (rate, with_dse, _) = grid[gi * RUNS_PER_RATE as usize];
            let mut completed = 0u64;
            let (mut crashes, mut evac, mut readmit, mut killed, mut cycles) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            // The election A/B is a pure function of each run's plan, so
            // it covers incomplete runs too (a tainted-kill watchdog still
            // had a resolved schedule to elect on).
            let (mut handovers, mut diverged) = (0u64, 0u64);
            for k in 0..RUNS_PER_RATE {
                let (h, d) = election_ab(&mk_plan(rate, with_dse, k), &two_nodes(pes));
                handovers += h;
                diverged += d;
            }
            for outcome in chunk {
                match outcome {
                    Ok(row) => {
                        completed += 1;
                        crashes += row.lse_crashes;
                        evac += row.evacuated_frames;
                        readmit += row.readmitted_instances;
                        killed += row.killed_instances;
                        cycles += row.cycles;
                        rows.push(row.clone());
                    }
                    // A tainted kill without a recoverable replay ends in
                    // a typed watchdog — that *is* the completion-rate
                    // data point.
                    Err(e) => eprintln!("  [lse-crash] run failed (counted as incomplete): {e}"),
                }
            }
            let m = completed.max(1);
            lse_table.push(vec![
                bench.name(),
                rate.to_string(),
                if with_dse { "yes" } else { "no" }.into(),
                format!("{completed}/{RUNS_PER_RATE}"),
                format!("{:.1}", crashes as f64 / m as f64),
                format!("{:.1}", evac as f64 / m as f64),
                format!("{:.1}", readmit as f64 / m as f64),
                format!("{:.1}", killed as f64 / m as f64),
                format!("{:.2}x", (cycles as f64 / m as f64) / clean.cycles as f64),
                if handovers == 0 {
                    "-".into()
                } else {
                    format!("never-poorer ({diverged}/{handovers} diverge)")
                },
            ]);
        }
    }
    ExperimentResult {
        health: None,
        profile: None,
        id: "BENCH_failover".into(),
        title: "DSE failover sweep: completion, re-homing cost and overhead vs crash rate".into(),
        text: format!("{}\n{}", text_table(&table), text_table(&lse_table)),
        rows,
    }
}

/// Observability overhead benchmark (observability PR): the same
/// prefetched run with the bus off, with events only (bounded rings),
/// and with everything on plus a Perfetto render. Simulated cycles and
/// results must be **identical** across all three — collection happens
/// post-run from the merged stream, so the only cost is host wall
/// clock, which this table quantifies. Written as `BENCH_observe.json`.
pub fn observe_bench(suite: &[Bench], pes: u16) -> ExperimentResult {
    use dta_core::ObsMode;

    let mut rows = Vec::new();
    let mut table = vec![vec![
        "benchmark".to_string(),
        "obs".into(),
        "cycles".into(),
        "events".into(),
        "dropped".into(),
        "overlap cycles".into(),
        "sim ms".into(),
        "overhead".into(),
        "trace KB".into(),
    ]];
    let mut worst_overhead = 1.0f64;
    for &bench in suite {
        let mut baseline: Option<(f64, Row)> = None;
        for label in ["off", "events", "all+perfetto"] {
            let mut cfg = pes8(pes);
            let (row, sim_ms, render_ms, trace_kb) = match label {
                "off" => {
                    cfg.obs.mode = ObsMode::Off;
                    let (row, ms) = try_run_timed(bench, Variant::HandPrefetch, cfg)
                        .unwrap_or_else(|e| panic!("{e}"));
                    (row, ms, 0.0, None)
                }
                "events" => {
                    cfg.obs.mode = ObsMode::Events;
                    let (row, ms) = try_run_timed(bench, Variant::HandPrefetch, cfg)
                        .unwrap_or_else(|e| panic!("{e}"));
                    (row, ms, 0.0, None)
                }
                _ => {
                    let (row, ms, render_ms, trace) =
                        try_run_traced(bench, Variant::HandPrefetch, cfg)
                            .unwrap_or_else(|e| panic!("{e}"));
                    (row, ms, render_ms, Some(trace.len() as f64 / 1024.0))
                }
            };
            let (base_ms, base_row) = baseline.get_or_insert((sim_ms, row.clone()));
            // Observation is pure: any simulated-state drift is a bug.
            assert_eq!(
                row.cycles,
                base_row.cycles,
                "{} [{label}]: observability changed the cycle count",
                bench.name()
            );
            assert_eq!(
                (row.table5, row.instances, row.dma_commands),
                (base_row.table5, base_row.instances, base_row.dma_commands),
                "{} [{label}]: observability changed the simulation",
                bench.name()
            );
            let overhead = (sim_ms + render_ms) / *base_ms;
            worst_overhead = worst_overhead.max(overhead);
            let mut row = row;
            row.wall_ms = Some(sim_ms + render_ms);
            table.push(vec![
                bench.name(),
                label.to_string(),
                row.cycles.to_string(),
                row.obs_events.to_string(),
                row.obs_dropped.to_string(),
                row.overlap_cycles.to_string(),
                format!("{sim_ms:.1}"),
                format!("{overhead:.2}x"),
                trace_kb.map_or("-".into(), |kb| format!("{kb:.0}")),
            ]);
            rows.push(row);
        }
    }
    let mut text = text_table(&table);
    text.push_str(&format!(
        "worst host overhead: {worst_overhead:.2}x (simulated cycles identical in all modes; \
         the cycle-delta budget is 0, and wall overhead is post-run collection only)\n"
    ));
    ExperimentResult {
        health: None,
        profile: None,
        id: "BENCH_observe".into(),
        title: "Observability overhead: bus off vs event rings vs full metrics + Perfetto".into(),
        text,
        rows,
    }
}

/// Cycle-exact profiling (observability PR): run the suite under full
/// observability, with and without a seeded fault plan, and derive the
/// paper's Figure-5-style stall breakdown from the exclusive
/// [`dta_core::FineCat`] attribution — plus the cross-unit critical
/// path, per-thread PF coverage, and the host engine profile. Two hard
/// invariants are asserted on every point: per-PE fine categories sum
/// *exactly* to that PE's cycles (conservation), and the
/// attribution-side overlap census never exceeds the event-derived
/// `MetricsReport` overlap (the former excludes intra-span stalls).
/// Written as `BENCH_profile.json`; the structured payload (attribution
/// tables, critical-path summaries, engine profile) rides in
/// [`ExperimentResult::profile`].
pub fn profile_bench(suite: &[Bench], pes: u16, seed: u64) -> ExperimentResult {
    use crate::runner::{row_from_result, service};
    use dta_core::{analyze, FaultPlan, FineCat, ObsMode};
    use dta_json::{Json, ToJson};

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    let mut table = vec![{
        let mut h = vec!["benchmark".to_string(), "faults".into(), "cycles".into()];
        h.extend(FineCat::ALL.iter().map(|c| format!("{}%", c.name())));
        h.push("dominant edge".into());
        h.push("PF coverage".into());
        h
    }];
    let mut host = vec![vec![
        "benchmark".to_string(),
        "faults".into(),
        "visited".into(),
        "PE ticks".into(),
        "PE deliv".into(),
        "DSE deliv".into(),
        "mem req".into(),
        "shard wall us".into(),
        "merge us".into(),
        "heap mean/max".into(),
    ]];
    let mut tail = String::new();
    for (bi, &bench) in suite.iter().enumerate() {
        for faulted in [false, true] {
            let mut cfg = pes8(pes);
            // Attribution analysis needs the full event stream; the
            // counters themselves are engine- and obs-invariant.
            cfg.obs.mode = ObsMode::All;
            if faulted {
                let mut plan = FaultPlan::seeded(
                    seed.wrapping_add(bi as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        | 1,
                );
                plan.dma_fail_ppm = 10_000;
                plan.msg_drop_ppm = 1_000;
                plan.msg_dup_ppm = 1_000;
                plan.msg_delay_ppm = 1_000;
                plan.falloc_deny_ppm = 2_500;
                cfg.faults = Some(plan);
            }
            let job = job_for(bench, Variant::HandPrefetch, cfg.clone());
            let done = service().submit(&job);
            let mut row = match row_from_result(bench, Variant::HandPrefetch, &cfg, &done.result) {
                Ok(row) => row,
                Err(e) => {
                    tail.push_str(&format!("skipped (did not complete): {e}\n"));
                    continue;
                }
            };
            if let Some(plan) = &cfg.faults {
                row.fault_rate_ppm = Some(plan.dma_fail_ppm);
                row.fault_seed = Some(plan.seed);
            }
            let out = done.result.outcome.as_ref().expect("row built from Ok");

            // Conservation: every simulated PE-cycle is charged to
            // exactly one exclusive fine category — with or without
            // injected faults.
            for (pe, p) in out.stats.per_pe.iter().enumerate() {
                assert_eq!(
                    p.total_fine_cycles(),
                    p.total_cycles(),
                    "fine-attribution conservation violated on PE {pe} of {} (faults {})",
                    bench.name(),
                    faulted,
                );
            }
            // Reconciliation: the attribution overlap census (compute
            // cycles with DMA in flight) is a strict subset of the
            // busy-span overlap the metrics fold reports.
            let attr_overlap: u64 = out.stats.per_pe.iter().map(|p| p.attr_overlap_cycles).sum();
            assert!(
                attr_overlap <= row.overlap_cycles,
                "attribution overlap {attr_overlap} exceeds metrics overlap {} on {}",
                row.overlap_cycles,
                bench.name(),
            );
            if !faulted {
                assert!(
                    attr_overlap > 0 && row.overlap_cycles > 0,
                    "hand-PF {} reported no DMA/compute overlap",
                    bench.name(),
                );
            }

            let stream = out.obs.as_ref().expect("ObsMode::All collects a stream");
            let fine: Vec<_> = out.stats.per_pe.iter().map(|p| p.fine).collect();
            let cycles: Vec<u64> = out.stats.per_pe.iter().map(|p| p.total_cycles()).collect();
            let names: Vec<String> = job.program.threads.iter().map(|t| t.name.clone()).collect();
            let analysis = analyze(&stream.records, &fine, &cycles, &names);

            let totals = analysis.totals();
            let total_cycles: u64 = cycles.iter().sum();
            let (dec, blk) = analysis.threads.iter().fold((0u64, 0u64), |(d, b), t| {
                (d + t.reads_decoupled, b + t.reads_blocking)
            });
            let coverage = if dec + blk == 0 {
                1.0
            } else {
                dec as f64 / (dec + blk) as f64
            };
            let dominant = analysis
                .critical_path
                .dominant()
                .map_or("-".to_string(), |e| e.kind.name().to_string());
            let flabel = if faulted { "seeded" } else { "off" };
            let mut cells = vec![bench.name(), flabel.into(), row.cycles.to_string()];
            cells.extend(FineCat::ALL.iter().map(|&c| {
                format!(
                    "{:.1}",
                    100.0 * totals[c as usize] as f64 / total_cycles.max(1) as f64
                )
            }));
            cells.push(dominant.clone());
            cells.push(format!("{:.0}%", 100.0 * coverage));
            table.push(cells);
            host.push(vec![
                bench.name(),
                flabel.into(),
                row.visited_cycles.to_string(),
                row.pe_ticks.to_string(),
                row.pe_deliveries.to_string(),
                row.dse_deliveries.to_string(),
                row.mem_requests.to_string(),
                row.shard_wall_us.iter().sum::<u64>().to_string(),
                row.merge_wall_us.to_string(),
                format!("{:.1}/{}", row.wake_heap_mean, row.wake_heap_max),
            ]);
            let cp = &analysis.critical_path;
            tail.push_str(&format!(
                "{} [faults {flabel}]: critical path [{}..{}] across {} instances, \
                 dominant edge {dominant}",
                bench.name(),
                cp.start_cycle,
                cp.end_cycle,
                cp.instances,
            ));
            if let Some(d) = cp.dominant() {
                tail.push_str(&format!(
                    " ({} cycles over {} segments, {:.0}% of walked path)",
                    d.cycles,
                    d.count,
                    100.0 * d.cycles as f64 / cp.total_cycles().max(1) as f64
                ));
            }
            tail.push('\n');

            payload.push(Json::obj([
                ("bench", Json::Str(bench.name())),
                ("variant", Variant::HandPrefetch.label().to_json()),
                ("faulted", faulted.to_json()),
                (
                    "fault_seed",
                    cfg.faults
                        .as_ref()
                        .map_or(Json::Null, |p| dta_json::u64_json(p.seed)),
                ),
                ("attr_overlap_cycles", attr_overlap.to_json()),
                ("metrics_overlap_cycles", row.overlap_cycles.to_json()),
                ("analysis", analysis.to_json()),
                ("engine", out.engine.to_json()),
            ]));
            rows.push(row);
        }
    }
    let mut text = text_table(&table);
    text.push('\n');
    text.push_str(&text_table(&host));
    text.push('\n');
    text.push_str(&tail);
    ExperimentResult {
        health: None,
        profile: Some(Json::Arr(payload)),
        id: "BENCH_profile".into(),
        title: "Stall attribution, critical path and host engine profile (hand-PF, ±faults)".into(),
        text,
        rows,
    }
}

/// Service benchmark (jobs-as-values PR): submit the fig6/7/8 PE grid
/// to a dedicated `dta-serve` instance twice and measure the
/// content-addressed cache. The second pass must be served almost
/// entirely from cache (≥90% — in practice 100%) with **byte-identical**
/// canonical results, and its wall clock must sit well below the cold
/// pass. Written as `BENCH_serve.json` so successive PRs can track the
/// service layer; every row carries its `JobKey` and cache-hit flag.
pub fn serve_bench(suite: &[Bench], max_pes: u16, threads: usize) -> ExperimentResult {
    use dta_core::{ObsMode, SimJob};
    use dta_serve::Service;

    // A dedicated service: the two-pass hit-rate accounting must not be
    // diluted by whatever earlier experiments already cached.
    let service = Service::in_memory(threads);
    let pes_list: Vec<u16> = [1u16, 2, 4, 8]
        .into_iter()
        .filter(|&p| p <= max_pes)
        .collect();
    let points: Vec<(Bench, Variant, SystemConfig)> = suite
        .iter()
        .flat_map(|&bench| {
            pes_list.iter().flat_map(move |&pes| {
                VARIANTS.iter().map(move |&v| {
                    let mut cfg = pes8(pes);
                    // Events on: the cache must replay full obs streams
                    // byte-identically, not just scalar stats.
                    cfg.obs.mode = ObsMode::Events;
                    (bench, v, cfg)
                })
            })
        })
        .collect();
    let jobs: Vec<SimJob> = points
        .iter()
        .map(|(b, v, cfg)| job_for(*b, *v, cfg.clone()))
        .collect();

    let started = std::time::Instant::now();
    let cold = service.run_grid(&jobs);
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;
    let after_cold = service.stats();

    let started = std::time::Instant::now();
    let warm = service.run_grid(&jobs);
    let warm_ms = started.elapsed().as_secs_f64() * 1e3;
    let after_warm = service.stats();

    // The contracts the PR promises, checked hard on every run.
    let warm_hits = (after_warm.hits_memory + after_warm.hits_disk + after_warm.coalesced)
        - (after_cold.hits_memory + after_cold.hits_disk + after_cold.coalesced);
    let warm_hit_rate = warm_hits as f64 / jobs.len() as f64;
    assert!(
        warm_hit_rate >= 0.9,
        "second pass must be >=90% cache hits, got {warm_hit_rate:.2}"
    );
    assert_eq!(
        after_warm.executed, after_cold.executed,
        "the warm pass must not re-simulate anything"
    );
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            c.result.canonical_string(),
            w.result.canonical_string(),
            "cached result must be byte-identical to the cold run"
        );
    }
    assert!(
        warm_ms < cold_ms,
        "warm pass ({warm_ms:.1} ms) must beat cold ({cold_ms:.1} ms)"
    );

    let mut rows = Vec::new();
    for (pass, completions) in [("cold", &cold), ("warm", &warm)] {
        for ((bench, variant, cfg), done) in points.iter().zip(completions.iter()) {
            let mut row = crate::runner::row_from_result(*bench, *variant, cfg, &done.result)
                .unwrap_or_else(|e| panic!("[serve/{pass}] {e}"));
            row.cache_hit = done.status.is_hit();
            row.wall_ms = Some(done.wall_ms);
            rows.push(row);
        }
    }

    let table = vec![
        vec![
            "pass".to_string(),
            "points".into(),
            "executed".into(),
            "hits".into(),
            "hit rate".into(),
            "wall ms".into(),
        ],
        vec![
            "cold".into(),
            jobs.len().to_string(),
            after_cold.executed.to_string(),
            (after_cold.hits_memory + after_cold.hits_disk + after_cold.coalesced).to_string(),
            format!("{:.2}", after_cold.hit_rate()),
            format!("{cold_ms:.1}"),
        ],
        vec![
            "warm".into(),
            jobs.len().to_string(),
            "0".into(),
            warm_hits.to_string(),
            format!("{warm_hit_rate:.2}"),
            format!("{warm_ms:.1}"),
        ],
    ];
    let mut text = text_table(&table);
    text.push_str(&format!(
        "all {} warm results byte-identical to cold; warm/cold wall = {:.3}x\n",
        jobs.len(),
        warm_ms / cold_ms
    ));

    // Supervision ledger: a healthy two-pass grid must show zero host
    // faults — any panic, timeout, shed or quarantine here is a bug.
    let health = service.health();
    assert_eq!(health.host_panics, 0, "no host panics in a healthy grid");
    assert_eq!(health.timeouts, 0, "no deadline expiries in a healthy grid");
    assert_eq!(health.sheds, 0, "no load shedding in a healthy grid");
    text.push_str(&format!(
        "health: executions={} coalesced_waits={} retries={} host_panics={} \
         timeouts={} sheds={} quarantines={} disk_degraded={}\n",
        health.executions,
        health.coalesced_waits,
        health.retries,
        health.host_panics,
        health.timeouts,
        health.sheds,
        health.quarantines,
        health.disk_degraded,
    ));
    ExperimentResult {
        health: Some(health.to_json()),
        profile: None,
        id: "BENCH_serve".into(),
        title: "Service cache: repeated fig6/7/8 PE grid through dta-serve".into(),
        text,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_observe_bench_is_pure_and_counts_events() {
        let r = observe_bench(&[Bench::Mmul(8)], 2);
        assert_eq!(r.id, "BENCH_observe");
        assert_eq!(r.rows.len(), 3);
        // One cycle count across all modes.
        let cycles: Vec<u64> = r.rows.iter().map(|row| row.cycles).collect();
        assert!(cycles.windows(2).all(|w| w[0] == w[1]), "{cycles:?}");
        // The off row collects nothing; the others collect events and
        // the full mode measures non-blocking overlap.
        assert_eq!(r.rows[0].obs_mode, None);
        assert_eq!(r.rows[0].obs_events, 0);
        assert_eq!(r.rows[1].obs_mode.as_deref(), Some("events"));
        assert!(r.rows[1].obs_events > 0);
        assert_eq!(r.rows[2].obs_mode.as_deref(), Some("all"));
        assert!(r.rows[2].overlap_cycles > 0);
        assert!(r.text.contains("trace KB"));
    }

    #[test]
    fn quick_table5_has_three_benchmarks() {
        let r = table5(&Bench::quick_suite(), 2);
        assert_eq!(r.rows.len(), 3);
        assert!(r.text.contains("bitcnt(512)"));
        assert!(r.text.contains("paper"));
    }

    #[test]
    fn quick_fig_exec_reports_speedups() {
        let r = fig_exec_scalability("fig7", Bench::Mmul(8), 2);
        assert_eq!(r.rows.len(), 6); // 2 PE counts x 3 variants
        assert!(r.text.contains("speedup"));
    }

    #[test]
    fn config_prints_paper_tables() {
        let r = config();
        assert!(r.text.contains("512 MB"));
        assert!(r.text.contains("Tag ID"));
    }

    #[test]
    fn quick_serve_bench_hits_cache_on_second_pass() {
        let r = serve_bench(&[Bench::Mmul(8)], 2, 2);
        assert_eq!(r.id, "BENCH_serve");
        // 2 PE counts x 3 variants, cold + warm passes.
        assert_eq!(r.rows.len(), 12);
        let (cold, warm) = r.rows.split_at(6);
        assert!(cold.iter().all(|row| !row.cache_hit));
        assert!(warm.iter().all(|row| row.cache_hit));
        // Identical grid order: pass-paired rows share their JobKey.
        for (c, w) in cold.iter().zip(warm) {
            assert_eq!(c.job_key, w.job_key);
            assert_eq!(c.cycles, w.cycles);
        }
        assert!(r.text.contains("byte-identical"));
    }

    #[test]
    fn quick_failover_sweep_reports_crashes() {
        let r = failover_bench(&[Bench::Bitcnt(512)], 4, 0xDA7A, &[0, 1_000_000], &[]);
        assert_eq!(r.id, "BENCH_failover");
        assert!(r.text.contains("cycle overhead"));
        // The certain-crash rows must have actually crashed and, when
        // they completed, failed over.
        let crashed: Vec<_> = r
            .rows
            .iter()
            .filter(|row| row.fault_rate_ppm == Some(1_000_000))
            .collect();
        assert!(!crashed.is_empty(), "no certain-crash run completed");
        assert!(crashed
            .iter()
            .all(|row| row.dse_crashes > 0 && row.verified));
        // Rate-0 rows are crash-free.
        assert!(r
            .rows
            .iter()
            .filter(|row| row.fault_rate_ppm == Some(0))
            .all(|row| row.dse_crashes == 0 && row.failovers == 0));
    }

    #[test]
    fn quick_failover_sweep_reports_lse_grid() {
        let r = failover_bench(&[Bench::Bitcnt(512)], 4, 0xDA7A, &[], &[0, 500_000]);
        assert_eq!(r.id, "BENCH_failover");
        assert!(r.text.contains("lse ppm"));
        assert!(r.text.contains("cap-aware A/B"));
        // The likely-crash rows that completed must have crashed and
        // re-admitted at least as much as they evacuated; the rate-0 rows
        // must be crash-free.
        let crashed: Vec<_> = r
            .rows
            .iter()
            .filter(|row| row.fault_rate_ppm == Some(500_000) && row.lse_crashes > 0)
            .collect();
        assert!(!crashed.is_empty(), "no lse-crash run completed");
        assert!(crashed
            .iter()
            .all(|row| row.verified && row.readmitted_instances >= row.evacuated_frames));
        assert!(r
            .rows
            .iter()
            .filter(|row| row.fault_rate_ppm == Some(0))
            .all(|row| row.lse_crashes == 0 && row.evacuated_frames == 0));
    }

    #[test]
    fn election_ab_certifies_capacity_aware_choice() {
        // Certain DSE + LSE crashes on a 2-node machine: every detected
        // handover must elect a peer at least as frame-rich as the
        // lowest-id rule would (election_ab panics otherwise).
        let mut cfg = pes8(8);
        cfg.nodes = 2;
        cfg.pes_per_node = 4;
        let mut handovers = 0;
        for s in 0..32u64 {
            let mut plan = dta_core::FaultPlan::seeded(s);
            plan.dse_crash_ppm = 500_000;
            plan.dse_crash_window = 10_000;
            plan.dse_failover_detect = 500;
            plan.dse_restart_after = 10_000;
            plan.lse_crash_ppm = 500_000;
            plan.lse_crash_window = 10_000;
            plan.lse_detect = 500;
            plan.lse_restart_after = 10_000;
            let (h, _) = election_ab(&plan, &cfg);
            handovers += h;
        }
        assert!(handovers > 0, "no seed produced a DSE handover");
    }

    #[test]
    fn quick_speed_bench_is_pure_and_skips_ticks() {
        let r = speed_bench(&[(Bench::Gather(64), Variant::Baseline, 4)]);
        assert_eq!(r.id, "BENCH_speed");
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].sched, "dense");
        assert_eq!(r.rows[1].sched, "fast-forward");
        assert_eq!(r.rows[2].sched, "fast-forward+memo");
        // Pure host-time optimisations: identical simulated outcome
        // (speed_bench itself hard-asserts full RunStats equality)...
        assert_eq!(r.rows[0].cycles, r.rows[1].cycles);
        assert_eq!(r.rows[0].cycles, r.rows[2].cycles);
        assert_eq!(r.rows[0].visited_cycles, r.rows[1].visited_cycles);
        // ...with strictly less engine work.
        assert_eq!(r.rows[0].skipped_ticks, 0);
        assert!(r.rows[1].skipped_ticks > 0);
        assert!(r.rows[1].pe_ticks < r.rows[0].pe_ticks);
        // The memo row replays segments instead of re-interpreting them.
        assert_eq!(r.rows[0].memo_hits, 0);
        assert!(r.rows[2].memo_hits > 0);
        assert!(r.rows[2].memo_replayed_cycles > 0);
        assert!(r.rows[2].pe_ticks <= r.rows[1].pe_ticks);
    }

    #[test]
    fn quick_faults_sweep_reports_rates() {
        let r = faults_bench(&[Bench::Mmul(8)], 2, 0xDA7A, &[0, 50_000]);
        assert_eq!(r.id, "BENCH_faults");
        assert!(r.rows.iter().any(|row| row.fault_rate_ppm == Some(50_000)));
        assert!(r.rows.iter().all(|row| row.verified));
        assert!(r.text.contains("cycle overhead"));
    }
}
