//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT ...] [--quick] [--pes N] [--threads N] [--out DIR]
//!       [--sweep-threads N] [--cache-dir DIR] [--deadline-ms N] [--sched MODE] [--memo]
//!       [--fault-seed N] [--fault-rate PPM] [--lse-crash-ppm PPM] [--obs MODE]
//!       [--metrics-interval N] [--obs-stream N] [--trace-out PATH]
//!
//! EXPERIMENT: config table5 fig5 fig6 fig7 fig8 fig9 lat1
//!             ablate-split ablate-vfp ablate-hw
//!             ext-cache ext-spxp ext-wholeobj
//!             parallel speed faults failover observe profile serve all
//!             (default: all)
//! --quick     scaled-down workload sizes (CI-friendly)
//! --pes N     PEs for the non-scalability experiments (default 8)
//! --threads N run every experiment on the epoch-sharded engine with N
//!             host threads (results are bit-identical to sequential;
//!             the `parallel` experiment pins its own engine modes)
//! --sweep-threads N  run the independent points of parameter sweeps
//!             (every per-benchmark/per-config grid) on N host
//!             threads — the service's batch-executor pool; reports
//!             are identical to sequential
//! --cache-dir DIR  persist canonical `JobResult`s to DIR (the
//!             service's on-disk content-addressed store): repeated
//!             `repro` invocations replay identical points from disk
//!             instead of re-simulating
//! --deadline-ms N  per-job wall-clock budget for service runs: a job
//!             exceeding it completes as a typed host-side `Timeout`
//!             (never cached); the deterministic backstop remains each
//!             job's `max_cycles`
//! --sched MODE  cycle scheduler: fast-forward (default) | dense.
//!             A pure host-time choice — results are bit-identical —
//!             mainly for A/B timing; the `speed` experiment pins both
//! --memo      run every experiment with instance memoization + timing
//!             replay on. A pure host-time optimisation — results are
//!             bit-identical — mainly for A/B timing; the `speed`
//!             experiment pins memo on/off explicitly
//! --fault-seed N   base seed for the `faults`/`failover` sweeps
//!                  (default 0xDA7A)
//! --fault-rate PPM single injected fault rate for the `faults`
//!                  experiment instead of the built-in 0/1k/10k/100k
//!                  ppm sweep
//! --lse-crash-ppm PPM single LSE crash rate for the `failover`
//!                  experiment's LSE grid instead of the built-in
//!                  0/200k/500k ppm sweep
//! --obs MODE  run every experiment with the structured observability
//!             bus on: events | metrics | all | off (default off).
//!             Collection is pure observation — results and cycle
//!             counts are byte-identical — and composes with
//!             --threads and --sweep-threads
//! --metrics-interval N  gauge sampling interval in cycles
//!             (default 1000; implies nothing unless --obs samples)
//! --obs-stream N  drain observability records out of the per-unit
//!             rings every ~N simulated cycles instead of only at run
//!             end (0 = post-run merge; needs --obs). The merged stream
//!             is identical; long runs stop overflowing the rings
//! --trace-out PATH  additionally run the prefetched mmul under full
//!             observability and write a Perfetto/Chrome trace.json
//!             to PATH — load it at https://ui.perfetto.dev
//! --out DIR   also write <exp>.json / <exp>.txt into DIR
//!             (default: results/)
//! ```

use dta_bench::experiments::{
    ablate_hw, ablate_split, ablate_vfp, config, ext_cache, ext_spxp, ext_wholeobj, failover_bench,
    faults_bench, fig5, fig9, fig_exec_scalability, lat1, observe_bench, parallel_bench,
    profile_bench, serve_bench, speed_bench, table5,
};
use dta_bench::{emit, Bench, ExperimentResult};
use std::path::PathBuf;
use std::process::ExitCode;

/// Per-node crash probabilities for the failover sweep: off, likely-one,
/// certain-all (the last exercises crash-of-successor and restart).
const FAILOVER_RATES: &[u32] = &[0, 500_000, 1_000_000];

/// Per-PE LSE crash probabilities for the failover sweep's LSE grid
/// (overridden by `--lse-crash-ppm`).
const LSE_FAILOVER_RATES: &[u32] = &[0, 200_000, 500_000];

struct Options {
    experiments: Vec<String>,
    quick: bool,
    pes: u16,
    threads: Option<u16>,
    sweep_threads: Option<usize>,
    cache_dir: Option<PathBuf>,
    deadline_ms: Option<u64>,
    sched: Option<dta_core::SchedMode>,
    memo: bool,
    fault_seed: u64,
    fault_rate: Option<u32>,
    lse_crash_ppm: Option<u32>,
    obs: Option<dta_core::ObsMode>,
    metrics_interval: Option<u64>,
    obs_stream: Option<u64>,
    trace_out: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        experiments: Vec::new(),
        quick: false,
        pes: 8,
        threads: None,
        sweep_threads: None,
        cache_dir: None,
        deadline_ms: None,
        sched: None,
        memo: false,
        fault_seed: 0xDA7A,
        fault_rate: None,
        lse_crash_ppm: None,
        obs: None,
        metrics_interval: None,
        obs_stream: None,
        trace_out: None,
        out: Some(PathBuf::from("results")),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--pes" => {
                opts.pes = args
                    .next()
                    .ok_or("--pes needs a value")?
                    .parse()
                    .map_err(|_| "--pes needs a number")?;
            }
            "--threads" => {
                opts.threads = Some(
                    args.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|_| "--threads needs a number")?,
                );
            }
            "--sweep-threads" => {
                opts.sweep_threads = Some(
                    args.next()
                        .ok_or("--sweep-threads needs a value")?
                        .parse()
                        .map_err(|_| "--sweep-threads needs a number")?,
                );
            }
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(
                    args.next().ok_or("--cache-dir needs a value")?,
                ));
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    args.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs a millisecond count")?,
                );
            }
            "--sched" => {
                opts.sched = Some(match args.next().ok_or("--sched needs a value")?.as_str() {
                    "dense" => dta_core::SchedMode::Dense,
                    "fast-forward" | "ff" => dta_core::SchedMode::FastForward,
                    other => return Err(format!("--sched: unknown mode {other:?}")),
                });
            }
            "--memo" => opts.memo = true,
            "--fault-seed" => {
                let v = args.next().ok_or("--fault-seed needs a value")?;
                opts.fault_seed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                    .ok_or("--fault-seed needs a number")?;
            }
            "--fault-rate" => {
                opts.fault_rate = Some(
                    args.next()
                        .ok_or("--fault-rate needs a value")?
                        .parse()
                        .map_err(|_| "--fault-rate needs a ppm number")?,
                );
            }
            "--lse-crash-ppm" => {
                opts.lse_crash_ppm = Some(
                    args.next()
                        .ok_or("--lse-crash-ppm needs a value")?
                        .parse()
                        .map_err(|_| "--lse-crash-ppm needs a ppm number")?,
                );
            }
            "--obs" => {
                opts.obs = Some(match args.next().ok_or("--obs needs a value")?.as_str() {
                    "off" => dta_core::ObsMode::Off,
                    "events" => dta_core::ObsMode::Events,
                    "metrics" => dta_core::ObsMode::Metrics,
                    "all" => dta_core::ObsMode::All,
                    other => return Err(format!("--obs: unknown mode {other:?}")),
                });
            }
            "--metrics-interval" => {
                opts.metrics_interval = Some(
                    args.next()
                        .ok_or("--metrics-interval needs a value")?
                        .parse()
                        .map_err(|_| "--metrics-interval needs a cycle count")?,
                );
            }
            "--obs-stream" => {
                opts.obs_stream = Some(
                    args.next()
                        .ok_or("--obs-stream needs a value")?
                        .parse()
                        .map_err(|_| "--obs-stream needs a cycle count")?,
                );
            }
            "--trace-out" => {
                opts.trace_out = Some(PathBuf::from(
                    args.next().ok_or("--trace-out needs a path")?,
                ));
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--no-out" => opts.out = None,
            "--help" | "-h" => {
                return Err(
                    "usage: repro [EXPERIMENT ...] [--quick] [--pes N] [--threads N] \
                     [--sweep-threads N] [--fault-seed N] [--fault-rate PPM] [--out DIR]"
                        .into(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            exp => opts.experiments.push(exp.to_string()),
        }
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments = [
            "config",
            "table5",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "lat1",
            "ablate-split",
            "ablate-vfp",
            "ablate-hw",
            "ext-cache",
            "ext-spxp",
            "ext-wholeobj",
            "parallel",
            "speed",
            "faults", // also emits the failover sweep
            "observe",
            "profile",
            "serve",
        ]
        .map(str::to_string)
        .to_vec();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = opts.threads {
        dta_bench::experiments::set_default_parallelism(dta_core::Parallelism::Threads(n));
    }
    // One process-wide service carries every untimed run: sweep workers
    // from --sweep-threads, the on-disk result store from --cache-dir,
    // the per-job wall-clock budget from --deadline-ms.
    dta_bench::configure_service(
        opts.sweep_threads.unwrap_or(1),
        opts.cache_dir.as_deref(),
        opts.deadline_ms,
    );
    if let Some(sched) = opts.sched {
        dta_bench::experiments::set_default_sched(sched);
    }
    if opts.memo {
        dta_bench::experiments::set_default_memo(dta_core::MemoConfig::on());
    }
    if opts.obs.is_some() || opts.metrics_interval.is_some() || opts.obs_stream.is_some() {
        let mut obs = dta_core::ObsConfig::default();
        if let Some(mode) = opts.obs {
            obs.mode = mode;
        }
        if let Some(n) = opts.metrics_interval {
            obs.metrics_interval = n;
        }
        if let Some(n) = opts.obs_stream {
            obs.stream_interval = n;
        }
        dta_bench::experiments::set_default_obs(obs);
    }
    let suite = if opts.quick {
        Bench::quick_suite()
    } else {
        Bench::paper_suite()
    };
    let (bitcnt_n, mmul_n, zoom_n) = if opts.quick {
        (512, 16, 16)
    } else {
        (10_000, 32, 32)
    };
    let colsum_n = if opts.quick { 32 } else { 128 };

    for exp in &opts.experiments {
        let started = std::time::Instant::now();
        let result: ExperimentResult = match exp.as_str() {
            "config" => config(),
            "table5" => table5(&suite, opts.pes),
            "fig5" => fig5(&suite, opts.pes),
            "fig6" => fig_exec_scalability("fig6", Bench::Bitcnt(bitcnt_n), opts.pes),
            "fig7" => fig_exec_scalability("fig7", Bench::Mmul(mmul_n), opts.pes),
            "fig8" => fig_exec_scalability("fig8", Bench::Zoom(zoom_n), opts.pes),
            "fig9" => fig9(&suite, opts.pes),
            "lat1" => lat1(&suite, opts.pes),
            "ablate-split" => ablate_split(colsum_n, opts.pes),
            "ablate-vfp" => ablate_vfp(bitcnt_n, opts.pes),
            "ablate-hw" => ablate_hw(mmul_n, opts.pes),
            "ext-cache" => ext_cache(mmul_n, zoom_n, opts.pes),
            "ext-spxp" => ext_spxp(&suite, opts.pes),
            "ext-wholeobj" => ext_wholeobj(bitcnt_n, opts.pes),
            "parallel" => parallel_bench(if opts.quick { 16 } else { 64 }, opts.pes),
            "speed" => {
                use dta_workloads::Variant::{Baseline, HandPrefetch};
                let gather_n = if opts.quick { 256 } else { 2048 };
                // Fast-forward pays off when many PEs sit idle while a few
                // work, so the sweep includes a wide-machine gather case on
                // top of the paper-default width (see DESIGN.md §12).
                let wide = if opts.quick { 32 } else { 128 };
                let cases = [
                    (Bench::Bitcnt(bitcnt_n), HandPrefetch, opts.pes),
                    (Bench::Mmul(mmul_n), HandPrefetch, opts.pes),
                    (Bench::Zoom(zoom_n), HandPrefetch, opts.pes),
                    (Bench::Gather(gather_n), Baseline, opts.pes),
                    (Bench::Gather(gather_n), Baseline, wide),
                ];
                speed_bench(&cases)
            }
            "faults" => {
                let rates: Vec<u32> = match opts.fault_rate {
                    Some(r) => vec![0, r],
                    None => vec![0, 1_000, 10_000, 100_000],
                };
                // The faults family also tracks DSE-crash recovery: emit
                // the failover sweep alongside the fault sweep.
                let lse_rates: Vec<u32> = match opts.lse_crash_ppm {
                    Some(r) => vec![0, r],
                    None => LSE_FAILOVER_RATES.to_vec(),
                };
                let fo = failover_bench(
                    &suite,
                    opts.pes,
                    opts.fault_seed,
                    FAILOVER_RATES,
                    &lse_rates,
                );
                if let Err(e) = emit(&fo, opts.out.as_deref()) {
                    eprintln!("failed to write results: {e}");
                    return ExitCode::FAILURE;
                }
                faults_bench(&suite, opts.pes, opts.fault_seed, &rates)
            }
            "failover" => {
                let lse_rates: Vec<u32> = match opts.lse_crash_ppm {
                    Some(r) => vec![0, r],
                    None => LSE_FAILOVER_RATES.to_vec(),
                };
                failover_bench(
                    &suite,
                    opts.pes,
                    opts.fault_seed,
                    FAILOVER_RATES,
                    &lse_rates,
                )
            }
            "observe" => observe_bench(&suite, opts.pes),
            "profile" => profile_bench(&suite, opts.pes, opts.fault_seed),
            "serve" => serve_bench(&suite, opts.pes, opts.sweep_threads.unwrap_or(1)),
            other => {
                eprintln!("unknown experiment {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = emit(&result, opts.out.as_deref()) {
            eprintln!("failed to write results: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[{exp} done in {:.1?}]\n", started.elapsed());
    }
    if let Some(path) = &opts.trace_out {
        let bench = Bench::Mmul(mmul_n);
        let mut cfg = dta_core::SystemConfig::with_pes(opts.pes);
        if let Some(n) = opts.metrics_interval {
            cfg.obs.metrics_interval = n;
        }
        match dta_bench::runner::try_run_traced(bench, dta_workloads::Variant::HandPrefetch, cfg) {
            Ok((row, _, _, trace)) => {
                if let Err(e) = std::fs::write(path, &trace) {
                    eprintln!("failed to write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "[trace: {} {} events -> {} ({:.0} KB); open it at https://ui.perfetto.dev]",
                    bench.name(),
                    row.obs_events,
                    path.display(),
                    trace.len() as f64 / 1024.0,
                );
            }
            Err(e) => {
                eprintln!("--trace-out run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
