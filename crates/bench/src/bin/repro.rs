//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT ...] [--quick] [--pes N] [--threads N] [--out DIR]
//!       [--sweep-threads N] [--fault-seed N] [--fault-rate PPM]
//!
//! EXPERIMENT: config table5 fig5 fig6 fig7 fig8 fig9 lat1
//!             ablate-split ablate-vfp ablate-hw
//!             ext-cache ext-spxp ext-wholeobj
//!             parallel faults failover all            (default: all)
//! --quick     scaled-down workload sizes (CI-friendly)
//! --pes N     PEs for the non-scalability experiments (default 8)
//! --threads N run every experiment on the epoch-sharded engine with N
//!             host threads (results are bit-identical to sequential;
//!             the `parallel` experiment pins its own engine modes)
//! --sweep-threads N  run the independent points of parameter sweeps
//!             (fig6/7/8 PE grids, faults/failover rate grids) on N
//!             host threads; reports are identical to sequential
//! --fault-seed N   base seed for the `faults`/`failover` sweeps
//!                  (default 0xDA7A)
//! --fault-rate PPM single injected fault rate for the `faults`
//!                  experiment instead of the built-in 0/1k/10k/100k
//!                  ppm sweep
//! --out DIR   also write <exp>.json / <exp>.txt into DIR
//!             (default: results/)
//! ```

use dta_bench::experiments::{
    ablate_hw, ablate_split, ablate_vfp, config, ext_cache, ext_spxp, ext_wholeobj, failover_bench,
    faults_bench, fig5, fig9, fig_exec_scalability, lat1, parallel_bench, table5,
};
use dta_bench::{emit, Bench, ExperimentResult};
use std::path::PathBuf;
use std::process::ExitCode;

/// Per-node crash probabilities for the failover sweep: off, likely-one,
/// certain-all (the last exercises crash-of-successor and restart).
const FAILOVER_RATES: &[u32] = &[0, 500_000, 1_000_000];

struct Options {
    experiments: Vec<String>,
    quick: bool,
    pes: u16,
    threads: Option<u16>,
    sweep_threads: Option<usize>,
    fault_seed: u64,
    fault_rate: Option<u32>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        experiments: Vec::new(),
        quick: false,
        pes: 8,
        threads: None,
        sweep_threads: None,
        fault_seed: 0xDA7A,
        fault_rate: None,
        out: Some(PathBuf::from("results")),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--pes" => {
                opts.pes = args
                    .next()
                    .ok_or("--pes needs a value")?
                    .parse()
                    .map_err(|_| "--pes needs a number")?;
            }
            "--threads" => {
                opts.threads = Some(
                    args.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|_| "--threads needs a number")?,
                );
            }
            "--sweep-threads" => {
                opts.sweep_threads = Some(
                    args.next()
                        .ok_or("--sweep-threads needs a value")?
                        .parse()
                        .map_err(|_| "--sweep-threads needs a number")?,
                );
            }
            "--fault-seed" => {
                let v = args.next().ok_or("--fault-seed needs a value")?;
                opts.fault_seed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                    .ok_or("--fault-seed needs a number")?;
            }
            "--fault-rate" => {
                opts.fault_rate = Some(
                    args.next()
                        .ok_or("--fault-rate needs a value")?
                        .parse()
                        .map_err(|_| "--fault-rate needs a ppm number")?,
                );
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--no-out" => opts.out = None,
            "--help" | "-h" => {
                return Err(
                    "usage: repro [EXPERIMENT ...] [--quick] [--pes N] [--threads N] \
                     [--sweep-threads N] [--fault-seed N] [--fault-rate PPM] [--out DIR]"
                        .into(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            exp => opts.experiments.push(exp.to_string()),
        }
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments = [
            "config",
            "table5",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "lat1",
            "ablate-split",
            "ablate-vfp",
            "ablate-hw",
            "ext-cache",
            "ext-spxp",
            "ext-wholeobj",
            "parallel",
            "faults", // also emits the failover sweep
        ]
        .map(str::to_string)
        .to_vec();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = opts.threads {
        dta_bench::experiments::set_default_parallelism(dta_core::Parallelism::Threads(n));
    }
    if let Some(n) = opts.sweep_threads {
        dta_bench::experiments::set_sweep_threads(n);
    }
    let suite = if opts.quick {
        Bench::quick_suite()
    } else {
        Bench::paper_suite()
    };
    let (bitcnt_n, mmul_n, zoom_n) = if opts.quick {
        (512, 16, 16)
    } else {
        (10_000, 32, 32)
    };
    let colsum_n = if opts.quick { 32 } else { 128 };

    for exp in &opts.experiments {
        let started = std::time::Instant::now();
        let result: ExperimentResult = match exp.as_str() {
            "config" => config(),
            "table5" => table5(&suite, opts.pes),
            "fig5" => fig5(&suite, opts.pes),
            "fig6" => fig_exec_scalability("fig6", Bench::Bitcnt(bitcnt_n), opts.pes),
            "fig7" => fig_exec_scalability("fig7", Bench::Mmul(mmul_n), opts.pes),
            "fig8" => fig_exec_scalability("fig8", Bench::Zoom(zoom_n), opts.pes),
            "fig9" => fig9(&suite, opts.pes),
            "lat1" => lat1(&suite, opts.pes),
            "ablate-split" => ablate_split(colsum_n, opts.pes),
            "ablate-vfp" => ablate_vfp(bitcnt_n, opts.pes),
            "ablate-hw" => ablate_hw(mmul_n, opts.pes),
            "ext-cache" => ext_cache(mmul_n, zoom_n, opts.pes),
            "ext-spxp" => ext_spxp(&suite, opts.pes),
            "ext-wholeobj" => ext_wholeobj(bitcnt_n, opts.pes),
            "parallel" => parallel_bench(if opts.quick { 16 } else { 64 }, opts.pes),
            "faults" => {
                let rates: Vec<u32> = match opts.fault_rate {
                    Some(r) => vec![0, r],
                    None => vec![0, 1_000, 10_000, 100_000],
                };
                // The faults family also tracks DSE-crash recovery: emit
                // the failover sweep alongside the fault sweep.
                let fo = failover_bench(&suite, opts.pes, opts.fault_seed, FAILOVER_RATES);
                if let Err(e) = emit(&fo, opts.out.as_deref()) {
                    eprintln!("failed to write results: {e}");
                    return ExitCode::FAILURE;
                }
                faults_bench(&suite, opts.pes, opts.fault_seed, &rates)
            }
            "failover" => failover_bench(&suite, opts.pes, opts.fault_seed, FAILOVER_RATES),
            other => {
                eprintln!("unknown experiment {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = emit(&result, opts.out.as_deref()) {
            eprintln!("failed to write results: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[{exp} done in {:.1?}]\n", started.elapsed());
    }
    ExitCode::SUCCESS
}
