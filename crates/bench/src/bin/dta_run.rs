//! `dta-run` — run a DTA assembly program on the simulated machine.
//!
//! ```text
//! dta-run PROGRAM.dtasm [options]
//!
//!   --args N,N,...     entry-thread arguments (default: none)
//!   --pes N            processing elements (default 8)
//!   --nodes N          DTA nodes (default 1)
//!   --latency N        main-memory latency in cycles (default 150)
//!   --prefetch         run the automatic prefetch compiler first
//!   --whole-object     also prefetch bounded table objects
//!   --cache            add a 16 kB per-PE data cache
//!   --sp-overlap       run PF blocks on the LSE's SP pipeline
//!   --trace            print the per-instance lifecycle table
//!   --trace-out PATH   write a Perfetto/Chrome trace.json of the run
//!                      to PATH — load it at https://ui.perfetto.dev
//!   --dump-asm         print the (possibly transformed) program and exit
//!   --dump-global NAME print a global's words after the run
//! ```
//!
//! The run itself is one [`dta_core::run_job`] call on a [`SimJob`]
//! value; stats, globals and traces all come out of the returned
//! [`dta_core::JobResult`], the same document `dta-serve` caches.
//!
//! Example program: `examples/asm/dotprod.dtasm`.

use dta_compiler::{prefetch_program, PlanOptions, TransformOptions};
use dta_core::{run_job, GlobalRead, ObsMode, SimJob, StallCat, SystemConfig, Trace};
use dta_isa::asm::{assemble, program_to_asm};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    path: String,
    args: Vec<i64>,
    pes: u16,
    nodes: u16,
    latency: u64,
    prefetch: bool,
    whole_object: bool,
    cache: bool,
    sp_overlap: bool,
    trace: bool,
    trace_out: Option<PathBuf>,
    dump_asm: bool,
    dump_globals: Vec<String>,
}

fn parse() -> Result<Options, String> {
    let mut o = Options {
        path: String::new(),
        args: Vec::new(),
        pes: 8,
        nodes: 1,
        latency: 150,
        prefetch: false,
        whole_object: false,
        cache: false,
        sp_overlap: false,
        trace: false,
        trace_out: None,
        dump_asm: false,
        dump_globals: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut need = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--args" => {
                o.args = need("--args")?
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse().map_err(|_| format!("bad arg {s:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--pes" => o.pes = need("--pes")?.parse().map_err(|_| "bad --pes")?,
            "--nodes" => o.nodes = need("--nodes")?.parse().map_err(|_| "bad --nodes")?,
            "--latency" => o.latency = need("--latency")?.parse().map_err(|_| "bad --latency")?,
            "--prefetch" => o.prefetch = true,
            "--whole-object" => {
                o.prefetch = true;
                o.whole_object = true;
            }
            "--cache" => o.cache = true,
            "--sp-overlap" => o.sp_overlap = true,
            "--trace" => o.trace = true,
            "--trace-out" => o.trace_out = Some(PathBuf::from(need("--trace-out")?)),
            "--dump-asm" => o.dump_asm = true,
            "--dump-global" => o.dump_globals.push(need("--dump-global")?),
            "--help" | "-h" => return Err("see the module docs (dta-run --help)".into()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            path => {
                if !o.path.is_empty() {
                    return Err("only one program file".into());
                }
                o.path = path.to_string();
            }
        }
    }
    if o.path.is_empty() {
        return Err("usage: dta-run PROGRAM.dtasm [options]".into());
    }
    Ok(o)
}

fn main() -> ExitCode {
    let o = match parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&o.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", o.path);
            return ExitCode::FAILURE;
        }
    };
    let mut program = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", o.path);
            return ExitCode::FAILURE;
        }
    };
    if o.prefetch {
        let opts = TransformOptions {
            plan: PlanOptions {
                whole_object: o.whole_object,
                ..PlanOptions::default()
            },
        };
        let (p, report) = prefetch_program(&program, &opts);
        eprintln!(
            "prefetch: decoupled {}/{} READ sites across {} thread(s)",
            report.total_decoupled(),
            report.total_reads(),
            report.threads.iter().filter(|t| t.transformed()).count()
        );
        program = p;
    }
    if o.dump_asm {
        print!("{}", program_to_asm(&program));
        return ExitCode::SUCCESS;
    }

    let mut cfg = SystemConfig::paper_default();
    cfg.pes_per_node = o.pes;
    cfg.nodes = o.nodes;
    cfg.mem_latency = o.latency;
    cfg.sp_pf_overlap = o.sp_overlap;
    if o.cache {
        cfg.cache = Some(dta_mem::CacheParams::default());
    }
    // Both trace flavours fold the observability stream the job result
    // carries: the Perfetto export needs everything, the lifecycle
    // table only thread events.
    if o.trace_out.is_some() {
        cfg.obs.mode = ObsMode::All;
    } else if o.trace {
        cfg.obs.mode = ObsMode::Events;
    }

    let job = SimJob::new(Arc::new(program), o.args.clone(), cfg);
    let result = run_job(&job);
    let out = match &result.outcome {
        Ok(out) => out,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = &out.stats;

    println!("job key       {}", result.key.hex());
    println!("cycles        {}", stats.cycles);
    println!("instructions  {}", stats.instructions);
    println!("instances     {}", stats.instances);
    println!("dma commands  {}", stats.dma_commands);
    let b = stats.breakdown();
    for cat in StallCat::ALL {
        println!("{:<14}{:5.1}%", cat.name(), b.pct(cat));
    }
    println!("pipeline usage {:.3}  IPC {:.3}", b.pipeline_usage, b.ipc);

    let globals: Vec<&str> = job
        .program
        .globals
        .iter()
        .map(|g| g.name.as_str())
        .collect();
    for name in &o.dump_globals {
        if !globals.contains(&name.as_str()) {
            eprintln!("no global named {name:?} (have: {})", globals.join(", "));
            return ExitCode::FAILURE;
        }
        print!("{name} =");
        let mut idx = 0;
        while let Some(w) = out.globals.read_global_word(name, idx) {
            print!(" {w}");
            idx += 1;
            if idx >= 64 {
                print!(" ...");
                break;
            }
        }
        println!();
    }
    if let Some(path) = &o.trace_out {
        let stream = out.obs.as_ref().expect("full observability was forced on");
        let trace = dta_core::perfetto_trace(&job.config, &job.program, stream);
        if let Err(e) = std::fs::write(path, &trace) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[trace: {} events -> {} ({:.0} KB); open it at https://ui.perfetto.dev]",
            stream.len(),
            path.display(),
            trace.len() as f64 / 1024.0,
        );
    }
    if o.trace {
        let stream = out.obs.as_ref().expect("events were forced on");
        let names: Vec<String> = job.program.threads.iter().map(|t| t.name.clone()).collect();
        let table = Trace::from_obs(&stream.records, job.config.trace_capacity).render(&names);
        println!("\n{table}");
    }
    ExitCode::SUCCESS
}
