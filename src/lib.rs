pub use dta_compiler as compiler;
pub use dta_core as core;
pub use dta_isa as isa;
pub use dta_mem as mem;
pub use dta_sched as sched;
pub use dta_workloads as workloads;
